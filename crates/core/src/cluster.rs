//! Multi-shard online serving: open-loop arrivals dispatched across
//! heterogeneous accelerators on the discrete-event clock.
//!
//! A [`Cluster`](OnlineConfig) is a set of [`ShardSpec`]s — each its
//! own [`AcceleratorConfig`], so shards may mix MAC kinds (BSC / LPC /
//! HPS) *and* memory hierarchies — fed by seeded
//! [`ArrivalProcess`](crate::des::ArrivalProcess) traffic sources.
//! [`run_online`] drives one [`crate::des::EventQueue`] interleaving
//! job-arrival and shard-completion events:
//!
//! 1. **Arrival** at cycle *t*: the [`DispatchPolicy`] picks a shard,
//!    then the engine's admission ladder runs against that shard —
//!    outstanding-job cap (`queue_full`), backlog limit (`overloaded`),
//!    and the DMA-aware deadline lower bound
//!    (`deadline_infeasible`, [`crate::Engine::estimate_cycles`]
//!    semantics).  Survivors get the shard's *exact* stall-inclusive
//!    schedule; if even that misses the absolute deadline
//!    (`arrival + relative deadline`) the job is shed at *t* without
//!    occupying the shard.  Dispatched jobs advance the shard's
//!    busy-until clock and enqueue a completion event.
//! 2. **Completion** at cycle *c*: the shard's outstanding count drops;
//!    at equal times completions precede arrivals
//!    ([`crate::des::PRIORITY_COMPLETION`]) so freed capacity is
//!    visible to same-cycle arrivals.
//!
//! Every scheduling decision happens serially on the event clock.
//! Workers enter only afterwards, to evaluate the expensive per-layer
//! [`NetworkReport`] **once per distinct (traffic source × shard)
//! pair** — results merge by pair index, so the whole
//! [`OnlineReport`], including the folded [`SloReport`], is
//! bit-identical at any worker count.  Latency is `completion −
//! arrival` on the event clock; outcomes stream into the existing
//! [`SloAccountant`], so per-tenant p99 / goodput / shed series come
//! for free over 10⁵–10⁶ simulated jobs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use bsc_mac::MacKind;
use bsc_nn::SharedNetwork;
use bsc_telemetry::profile::{PhaseHandle, Profiler};
use bsc_telemetry::{
    LocalCounter, LocalHistogram, LocalLabeledCounter, LocalMetrics, Registry, Telemetry,
};

use crate::des::{ArrivalGen, ArrivalProcess, CompletionLanes, EventQueue, PRIORITY_ARRIVAL};
use crate::engine::{
    estimate_cycles_for, schedule_cycles_for, CharacterizationCache, PrecisionPolicy,
    RejectReason, ShedReason,
};
use crate::report::NetworkReport;
use crate::slo::{quantize_energy_fj, window_width_for_horizon, SloAccountant, SloReport, SloTarget, TenantId};
use crate::{AccelError, Accelerator, AcceleratorConfig};

/// One shard of the cluster: a named accelerator configuration.  Shards
/// may differ in MAC kind *and* memory hierarchy.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Stable shard name (metric label, report key, Perfetto track
    /// group).
    pub name: String,
    /// The accelerator this shard models.
    pub accel: AcceleratorConfig,
}

/// How arrivals choose a shard.  All policies are deterministic
/// functions of the event-clock state; ties always break toward the
/// lowest shard index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through shards in index order, one arrival each.
    RoundRobin,
    /// Pick the shard with the least outstanding work
    /// (`busy_until − now`).
    LeastOutstanding,
    /// Deficit-counter fairness: route each tenant to the shard where
    /// that tenant has consumed the fewest execution cycles so far, so
    /// heavy tenants spread out instead of monopolizing one shard.
    TenantFair,
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
            DispatchPolicy::TenantFair => "tenant-fair",
        })
    }
}

impl std::str::FromStr for DispatchPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "round-robin" | "rr" => Ok(DispatchPolicy::RoundRobin),
            "least-outstanding" | "least-loaded" | "lo" => Ok(DispatchPolicy::LeastOutstanding),
            "tenant-fair" | "fair" => Ok(DispatchPolicy::TenantFair),
            other => Err(format!(
                "unknown dispatch policy {other:?} (expected round-robin, least-outstanding or tenant-fair)"
            )),
        }
    }
}

/// The job every arrival of one traffic source instantiates.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Template name; job instances are `name#<arrival-seq>`.
    pub name: String,
    /// Tenant the instances are accounted to.
    pub tenant: TenantId,
    /// The network to run.
    pub network: SharedNetwork,
    /// Precision policy applied once, up front.
    pub precision: PrecisionPolicy,
    /// Deadline **relative to arrival** (absolute deadline =
    /// `arrival + deadline_cycles`), or `None` for best-effort.
    pub deadline_cycles: Option<u64>,
    /// The tenant's SLO target, if any (declared to the accountant).
    pub slo: Option<SloTarget>,
}

/// One open-loop traffic source: a job template plus the arrival
/// process that emits its instances.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    /// What each arrival runs.
    pub template: JobTemplate,
    /// When arrivals happen.
    pub process: ArrivalProcess,
}

/// Configuration of one online-serving run.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// The heterogeneous shards jobs dispatch onto (must be non-empty).
    pub shards: Vec<ShardSpec>,
    /// Shard-selection policy.
    pub policy: DispatchPolicy,
    /// Seed for all arrival processes (each source derives its own
    /// stream deterministically from this and its index).
    pub seed: u64,
    /// Arrivals are generated while their timestamp is ≤ this horizon.
    pub horizon_cycles: u64,
    /// Hard cap on total arrivals (guards runaway rate tables).
    pub max_jobs: u64,
    /// Per-shard cap on dispatched-but-incomplete jobs; the `queue_full`
    /// rejection.
    pub max_outstanding: u64,
    /// Per-shard backlog limit in cycles (`busy_until − now`); the
    /// `overloaded` rejection.  `None` disables the check.
    pub max_backlog_cycles: Option<u64>,
    /// Cap on retained per-job decision records.  Decisions beyond the
    /// cap are dropped from [`OnlineReport::events`], counted in
    /// [`OnlineReport::events_truncated`] and surfaced through the
    /// `engine.decision_log.truncated` counter.  Use [`EVENT_LOG_CAP`]
    /// unless a test needs a tiny log.
    pub event_log_cap: usize,
    /// Worker threads for the report-evaluation phase (`None` = auto).
    /// **Never** affects results.
    pub workers: Option<usize>,
    /// The traffic sources (must be non-empty).
    pub sources: Vec<TrafficSource>,
}

/// Per-shard tallies of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard name.
    pub name: String,
    /// Shard MAC architecture.
    pub kind: MacKind,
    /// Jobs this shard completed.
    pub completed: u64,
    /// Jobs rejected while this shard was the dispatch choice.
    pub rejected: u64,
    /// Jobs shed while this shard was the dispatch choice.
    pub shed: u64,
    /// Sum of exact execution cycles of completed jobs.
    pub busy_cycles: u64,
    /// Cycle of the shard's last completion (0 if none).
    pub last_completion_cycle: u64,
    /// High-water mark of dispatched-but-incomplete jobs.
    pub peak_outstanding: u64,
    /// High-water mark of the backlog (`busy_until − now`) observed at
    /// arrival decisions against this shard, in cycles.
    pub peak_backlog_cycles: u64,
    /// Useful MACs completed.
    pub macs: u64,
    /// fJ-exact energy of completed jobs (integer sum of per-layer
    /// quantized energies — see [`crate::slo::quantize_energy_fj`]).
    pub energy_fj: u64,
}

/// One (capped) event-log record for the JSONL / Perfetto exports.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEvent {
    /// Job instance name (`template#seq`).
    pub job: String,
    /// Template the instance came from.
    pub template: String,
    /// Tenant accounted.
    pub tenant: TenantId,
    /// The dispatch-chosen shard.
    pub shard: String,
    /// `"completed"`, `"rejected"` or `"shed"`.
    pub outcome: &'static str,
    /// Machine-readable reason slug for rejected/shed.
    pub reason: Option<&'static str>,
    /// Arrival cycle.
    pub arrival_cycle: u64,
    /// Execution start cycle (= arrival for immediate dispatch;
    /// equal to `arrival_cycle` on rejected/shed records).
    pub start_cycle: u64,
    /// Completion cycle (decision cycle on rejected/shed records).
    pub completion_cycle: u64,
}

/// Cap on retained [`OnlineEvent`] records: the aggregate numbers cover
/// every job, but per-job logs over 10⁶ arrivals would dwarf the run,
/// so the log keeps the first [`EVENT_LOG_CAP`] decisions and counts
/// the rest in [`OnlineReport::events_truncated`].
pub const EVENT_LOG_CAP: usize = 10_000;

/// Per-shard admission-ladder funnel: how many arrivals each stage
/// passed or stopped while this shard was the dispatch choice.  The
/// stages are checked in order, so
/// `offered = queue_full + overloaded + deadline_infeasible +
/// shed_deadline + dispatched` holds exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardFunnel {
    /// Shard name.
    pub shard: String,
    /// Arrivals routed to this shard by the dispatch policy.
    pub offered: u64,
    /// Stopped by the outstanding-job cap.
    pub queue_full: u64,
    /// Stopped by the backlog limit.
    pub overloaded: u64,
    /// Stopped by the DMA-aware deadline lower bound.
    pub deadline_infeasible: u64,
    /// Passed admission but shed because the exact schedule missed the
    /// absolute deadline.
    pub shed_deadline: u64,
    /// Dispatched onto the shard.
    pub dispatched: u64,
}

/// One virtual-clock depth sample of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSample {
    /// Sample cycle (a multiple of [`OnlineReport::depth_stride_cycles`]).
    pub cycle: u64,
    /// Dispatched-but-incomplete jobs at that cycle.
    pub outstanding: u64,
    /// Backlog (`busy_until − cycle`) at that cycle.
    pub backlog_cycles: u64,
}

/// The depth series of one shard, sampled on the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDepth {
    /// Shard name.
    pub shard: String,
    /// Samples in cycle order.
    pub samples: Vec<DepthSample>,
}

/// Power-of-two sampling stride for the depth observatory: ~256 samples
/// per shard across the horizon, so the series stays dashboard-sized no
/// matter how many million events the run pops.
pub fn depth_stride_for_horizon(horizon_cycles: u64) -> u64 {
    (horizon_cycles / 256).max(1).next_power_of_two()
}

/// The deterministic result of one [`run_online`] call.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Dispatch policy that ran.
    pub policy: DispatchPolicy,
    /// Seed of the arrival streams.
    pub seed: u64,
    /// Configured arrival horizon.
    pub horizon_cycles: u64,
    /// Total arrivals (= completed + rejected + shed).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs shed at dispatch (exact schedule missed the deadline).
    pub shed: u64,
    /// Last completion cycle across all shards.
    pub makespan_cycles: u64,
    /// Per-shard tallies, in shard order.
    pub shards: Vec<ShardReport>,
    /// Per-tenant SLO accounting (latency = completion − arrival).
    pub slo: SloReport,
    /// First [`OnlineConfig::event_log_cap`] per-job decisions, in
    /// event order.
    pub events: Vec<OnlineEvent>,
    /// Decisions beyond the event-log cap.
    pub events_truncated: u64,
    /// Stride of the depth observatory samples (power of two, derived
    /// from the horizon by [`depth_stride_for_horizon`]).
    pub depth_stride_cycles: u64,
    /// Per-shard depth series sampled on the virtual clock, in shard
    /// order.
    pub depth: Vec<ShardDepth>,
    /// Per-shard admission-ladder funnels, in shard order.
    pub funnel: Vec<ShardFunnel>,
}

impl OnlineReport {
    /// Total fJ-exact energy across shards.
    pub fn total_energy_fj(&self) -> u64 {
        self.shards.iter().map(|s| s.energy_fj).sum()
    }
}

/// Mutable per-shard dispatch state.
struct ShardState {
    busy_until: u64,
    outstanding: u64,
    peak_outstanding: u64,
    peak_backlog_cycles: u64,
}

/// Chooses the shard for one arrival.  Deterministic; ties break toward
/// the lowest index.
fn choose_shard(
    policy: DispatchPolicy,
    now: u64,
    shards: &[ShardState],
    rr_cursor: &mut usize,
    tenant_cycles: &BTreeMap<(usize, usize), u64>,
    source: usize,
) -> usize {
    match policy {
        DispatchPolicy::RoundRobin => {
            let pick = *rr_cursor % shards.len();
            *rr_cursor = (*rr_cursor + 1) % shards.len();
            pick
        }
        DispatchPolicy::LeastOutstanding => shards
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.busy_until.saturating_sub(now), *i))
            .map(|(i, _)| i)
            .unwrap_or(0),
        DispatchPolicy::TenantFair => (0..shards.len())
            .min_by_key(|&i| (tenant_cycles.get(&(source, i)).copied().unwrap_or(0), i))
            .unwrap_or(0),
    }
}

/// The self-profiler phases of one online run, prefetched so the event
/// loop pays at most two clock reads per guarded scope.
struct OnlinePhases {
    arrival: PhaseHandle,
    dispatch: PhaseHandle,
    admission: PhaseHandle,
    schedule: PhaseHandle,
    slo: PhaseHandle,
}

/// How [`run_online_with_metrics`] records per-job metrics.
///
/// The two modes produce **byte-identical** metrics snapshots, reports
/// and SLO documents — `tests/metrics_equivalence.rs` pins this across
/// policies, arrival processes and worker counts.  [`MetricsMode::Batched`]
/// is what [`run_online`] uses; the shadow mode exists so the
/// equivalence stays testable, not for production use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsMode {
    /// Tally per-job counters into a lock-free [`LocalMetrics`]
    /// accumulator (label handles interned once per shard up front) and
    /// flush into the registry exactly once at end of run.  The hot
    /// path takes no `Mutex` and performs no allocation.
    Batched,
    /// The legacy per-event path: one registry operation per counter
    /// update, resolving names and label sets on every event.  Kept as
    /// the differential-testing reference.
    PerEventShadow,
}

/// Pre-interned [`LocalMetrics`] handles for one shard's labeled
/// outcome points.
struct ShardHandles {
    completed: LocalLabeledCounter,
    shed_deadline: LocalLabeledCounter,
    /// Indexed by reject slot: 0 = `queue_full`, 1 = `overloaded`,
    /// 2 = `deadline_infeasible` (the [`REJECT_SLUGS`] order).
    rejected: [LocalLabeledCounter; 3],
}

/// Reject-reason slugs by admission-ladder slot — must match
/// [`RejectReason::slug`] for each variant.
const REJECT_SLUGS: [&str; 3] = ["queue_full", "overloaded", "deadline_infeasible"];

/// The event loop's metric recording backend — see [`MetricsMode`].
enum MetricSink {
    Batched {
        local: LocalMetrics,
        submitted: LocalCounter,
        rejected: LocalCounter,
        shed: LocalCounter,
        completed: LocalCounter,
        wait: LocalHistogram,
        shards: Vec<ShardHandles>,
    },
    Shadow(Registry),
}

impl MetricSink {
    /// Interns every counter, labeled point and histogram the loop can
    /// touch — names and label sets are resolved here, once per shard,
    /// never on the hot path.  Points that never fire are skipped at
    /// flush time, so eager interning cannot register spurious metrics.
    fn batched(config: &OnlineConfig) -> MetricSink {
        let mut local = LocalMetrics::new();
        let submitted = local.counter("engine.jobs.submitted");
        let rejected = local.counter("engine.jobs.rejected");
        let shed = local.counter("engine.jobs.shed");
        let completed = local.counter("engine.jobs.completed");
        let wait = local
            .histogram("engine.queue.wait_cycles", crate::engine::QUEUE_WAIT_BOUNDS_CYCLES);
        let shards: Vec<ShardHandles> = config
            .shards
            .iter()
            .map(|s| {
                let n = s.name.as_str();
                ShardHandles {
                    completed: local
                        .labeled_counter("engine.jobs", &[("outcome", "completed"), ("shard", n)]),
                    shed_deadline: local.labeled_counter(
                        "engine.jobs",
                        &[("outcome", "shed"), ("reason", "deadline_missed"), ("shard", n)],
                    ),
                    rejected: REJECT_SLUGS.map(|slug| {
                        local.labeled_counter(
                            "engine.jobs",
                            &[("outcome", "rejected"), ("reason", slug), ("shard", n)],
                        )
                    }),
                }
            })
            .collect();
        MetricSink::Batched { local, submitted, rejected, shed, completed, wait, shards }
    }

    #[inline]
    fn on_submitted(&mut self) {
        match self {
            MetricSink::Batched { local, submitted, .. } => local.inc(*submitted),
            MetricSink::Shadow(m) => m.counter("engine.jobs.submitted").inc(),
        }
    }

    #[inline]
    fn on_rejected(&mut self, hi: usize, slot: usize, slug: &'static str, shard_name: &str) {
        debug_assert_eq!(REJECT_SLUGS[slot], slug);
        match self {
            MetricSink::Batched { local, rejected, shards, .. } => {
                local.inc(*rejected);
                local.inc_labeled(shards[hi].rejected[slot]);
            }
            MetricSink::Shadow(m) => {
                m.counter("engine.jobs.rejected").inc();
                m.labeled_counter("engine.jobs")
                    .with(&[("outcome", "rejected"), ("reason", slug), ("shard", shard_name)])
                    .inc();
            }
        }
    }

    #[inline]
    fn on_shed(&mut self, hi: usize, slug: &'static str, shard_name: &str) {
        match self {
            MetricSink::Batched { local, shed, shards, .. } => {
                local.inc(*shed);
                local.inc_labeled(shards[hi].shed_deadline);
            }
            MetricSink::Shadow(m) => {
                m.counter("engine.jobs.shed").inc();
                m.labeled_counter("engine.jobs")
                    .with(&[("outcome", "shed"), ("reason", slug), ("shard", shard_name)])
                    .inc();
            }
        }
    }

    #[inline]
    fn on_completed(&mut self, hi: usize, shard_name: &str, wait_cycles: u64) {
        match self {
            MetricSink::Batched { local, completed, wait, shards, .. } => {
                local.inc(*completed);
                local.inc_labeled(shards[hi].completed);
                local.record(*wait, wait_cycles);
            }
            MetricSink::Shadow(m) => {
                m.counter("engine.jobs.completed").inc();
                m.labeled_counter("engine.jobs")
                    .with(&[("outcome", "completed"), ("shard", shard_name)])
                    .inc();
                m.histogram("engine.queue.wait_cycles", crate::engine::QUEUE_WAIT_BOUNDS_CYCLES)
                    .record(wait_cycles);
            }
        }
    }
}

/// Runs one online-serving simulation.  See the module docs for the
/// event semantics and determinism contract.
///
/// The returned report and the metrics recorded into `telemetry` are a
/// pure function of `config` — bit-identical at any worker count and on
/// every platform.
///
/// # Errors
///
/// Propagates characterization and mapping failures; rejects empty
/// shard or source lists as
/// [`AccelError::Config`](crate::AccelError).
pub fn run_online(
    config: &OnlineConfig,
    telemetry: &Telemetry,
) -> Result<OnlineReport, AccelError> {
    run_online_profiled(config, telemetry, None)
}

/// [`run_online`] with an optional self-profiler attached.
///
/// When `profiler` is `Some`, the run accumulates wall-clock time into
/// the phases `arrival-sampling`, `dispatch`, `admission`,
/// `schedule-eval` and `slo-fold`, plus deterministic work counters per
/// phase (events popped, heap ops, map touches, metric increments, ...).
/// The counters are a pure function of `config` — byte-identical at any
/// worker count — while the wall-clock side is machine-dependent and
/// never gated.  Profiling never changes the report: the deterministic
/// work is tallied in loop-local integers and flushed once at the end.
///
/// # Errors
///
/// Same contract as [`run_online`].
pub fn run_online_profiled(
    config: &OnlineConfig,
    telemetry: &Telemetry,
    profiler: Option<&Profiler>,
) -> Result<OnlineReport, AccelError> {
    run_online_with_metrics(config, telemetry, profiler, MetricsMode::Batched)
}

/// [`run_online_profiled`] with an explicit [`MetricsMode`].  Production
/// callers never need this — [`MetricsMode::Batched`] is the default and
/// the two modes are byte-equivalent; it exists so the differential
/// test harness can drive the legacy per-event path side by side.
///
/// # Errors
///
/// Same contract as [`run_online`].
pub fn run_online_with_metrics(
    config: &OnlineConfig,
    telemetry: &Telemetry,
    profiler: Option<&Profiler>,
    mode: MetricsMode,
) -> Result<OnlineReport, AccelError> {
    if config.shards.is_empty() {
        return Err(AccelError::Config("online cluster needs at least one shard".into()));
    }
    if config.sources.is_empty() {
        return Err(AccelError::Config("online cluster needs at least one traffic source".into()));
    }
    let _wall = telemetry.metrics.timer("engine.run_online_ns");
    let m = &telemetry.metrics;
    let phases = profiler.map(|p| OnlinePhases {
        arrival: p.phase("arrival-sampling"),
        dispatch: p.phase("dispatch"),
        admission: p.phase("admission"),
        schedule: p.phase("schedule-eval"),
        slo: p.phase("slo-fold"),
    });

    // Precision policies apply once; per-(source × shard) cycle numbers
    // are computed up front — the event loop then runs on pure integers.
    let networks: Vec<SharedNetwork> =
        config.sources.iter().map(|s| s.template.precision.apply(&s.template.network)).collect();
    let n_shards = config.shards.len();
    let mut estimate = vec![0u64; config.sources.len() * n_shards];
    let mut exact = vec![0u64; config.sources.len() * n_shards];
    {
        let _g = phases.as_ref().map(|ph| ph.schedule.enter());
        for (si, net) in networks.iter().enumerate() {
            for (hi, shard) in config.shards.iter().enumerate() {
                estimate[si * n_shards + hi] = estimate_cycles_for(&shard.accel, net);
                exact[si * n_shards + hi] = schedule_cycles_for(&shard.accel, net)?;
            }
        }
    }

    // The heap holds *arrivals only* (payload = source index); shard
    // completions live in per-lane monotone FIFOs and pop as coalesced
    // same-cycle bursts.  The merge below preserves the unified queue's
    // exact (time, priority, seq) order — see `CompletionLanes`.
    let mut events: EventQueue<usize> = EventQueue::new();
    let mut lanes = CompletionLanes::new(n_shards);
    let mut gens: Vec<ArrivalGen> = config
        .sources
        .iter()
        .enumerate()
        .map(|(i, s)| {
            // Distinct, deterministic stream per source: golden-ratio
            // hashing keeps seeds apart even for adjacent indices.
            let seed = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ArrivalGen::new(s.process.clone(), seed)
        })
        .collect();
    // Per-source arrival buffers, refilled in batches through the
    // sampler's fast path.  The heap only ever holds each source's
    // *next* arrival (exactly as before), so push gating — horizon and
    // max_jobs — happens at the same moments and the report is
    // unchanged; a buffered timestamp past the horizon stays put as a
    // sentinel, so a dead source is never refilled again.
    const ARRIVAL_BATCH: usize = 64;
    let mut arrival_bufs: Vec<VecDeque<u64>> =
        config.sources.iter().map(|_| VecDeque::with_capacity(ARRIVAL_BATCH)).collect();
    let mut arrivals_pushed = 0u64;
    let mut arrival_samples = 0u64;
    let mut arrival_refills = 0u64;
    {
        let _g = phases.as_ref().map(|ph| ph.arrival.enter());
        for (i, g) in gens.iter_mut().enumerate() {
            g.refill(ARRIVAL_BATCH, &mut arrival_bufs[i]);
            arrival_refills += 1;
            arrival_samples += ARRIVAL_BATCH as u64;
            let t = arrival_bufs[i][0];
            if t <= config.horizon_cycles && arrivals_pushed < config.max_jobs {
                arrival_bufs[i].pop_front();
                events.push(t, PRIORITY_ARRIVAL, i);
                arrivals_pushed += 1;
            }
        }
    }

    let mut shards: Vec<ShardState> = (0..n_shards)
        .map(|_| ShardState {
            busy_until: 0,
            outstanding: 0,
            peak_outstanding: 0,
            peak_backlog_cycles: 0,
        })
        .collect();
    let mut shard_reports: Vec<ShardReport> = config
        .shards
        .iter()
        .map(|s| ShardReport {
            name: s.name.clone(),
            kind: s.accel.kind,
            completed: 0,
            rejected: 0,
            shed: 0,
            busy_cycles: 0,
            last_completion_cycle: 0,
            peak_outstanding: 0,
            peak_backlog_cycles: 0,
            macs: 0,
            energy_fj: 0,
        })
        .collect();

    // One completed job, compactly: the NetworkReport is attached later,
    // once per distinct (source × shard) pair.
    struct CompletedRec {
        source: u32,
        shard: u32,
        arrival: u64,
        completion: u64,
    }
    let mut completed_recs: Vec<CompletedRec> = Vec::new();
    let mut rr_cursor = 0usize;
    let mut tenant_cycles: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut per_source_seq: Vec<u64> = vec![0; config.sources.len()];
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut event_log: Vec<OnlineEvent> = Vec::new();
    let mut events_truncated = 0u64;
    // Deferred SLO observations (completion observations wait for the
    // report phase; decision bookkeeping happens here).  Rejections
    // carry no per-event payload the accountant keeps — no latency
    // sample, no windowed series — so they defer as plain counts per
    // (source × reason), allocation-free; `observe_rejections` folds
    // each group in one call.  Sheds *do* record a windowed sample at
    // their decision cycle, so they keep per-event records (they are
    // rare: the deadline-missed path only).
    let mut reject_counts: Vec<u64> = vec![0; config.sources.len() * REJECT_SLUGS.len()];
    let mut deferred_sheds: Vec<(u32, &'static str, u64)> = Vec::new();

    // Depth observatory: per-shard (outstanding, backlog) sampled on the
    // virtual clock at a power-of-two stride.  Boundaries are drained
    // *before* the event that crosses them, and the queue delivers
    // events in time order, so the state recorded at boundary `b` is
    // exactly the state after every event with time ≤ `b` — a pure
    // function of the event stream, independent of worker count.
    let stride = depth_stride_for_horizon(config.horizon_cycles);
    let mut next_sample = stride;
    let mut depth: Vec<ShardDepth> = config
        .shards
        .iter()
        .map(|s| ShardDepth { shard: s.name.clone(), samples: Vec::new() })
        .collect();
    let mut funnel: Vec<ShardFunnel> = config
        .shards
        .iter()
        .map(|s| ShardFunnel { shard: s.name.clone(), ..ShardFunnel::default() })
        .collect();

    let event_log_cap = config.event_log_cap;
    let mut sink = match mode {
        MetricsMode::Batched => MetricSink::batched(config),
        MetricsMode::PerEventShadow => MetricSink::Shadow(m.clone()),
    };
    let mut burst: Vec<usize> = Vec::with_capacity(n_shards.max(4));
    let mut completion_bursts = 0u64;

    loop {
        // Merge the arrival heap with the completion lanes: at equal
        // times completions come first (the PRIORITY_COMPLETION rule),
        // so `c <= a` picks the burst.
        let (now, is_completion) = match (lanes.peek_time(), events.peek_time()) {
            (Some(c), Some(a)) if c <= a => (c, true),
            (Some(c), None) => (c, true),
            (None, Some(a)) => (a, false),
            (Some(_), Some(a)) => (a, false),
            (None, None) => break,
        };
        while next_sample < now {
            for (d, s) in depth.iter_mut().zip(&shards) {
                d.samples.push(DepthSample {
                    cycle: next_sample,
                    outstanding: s.outstanding,
                    backlog_cycles: s.busy_until.saturating_sub(next_sample),
                });
            }
            next_sample += stride;
        }
        if is_completion {
            // One lane scan pops every completion due this cycle — a
            // single batch operation per burst instead of one heap pop
            // (plus sift-down) per job.
            lanes.pop_burst(&mut burst);
            completion_bursts += 1;
            for &lane in &burst {
                shards[lane].outstanding -= 1;
            }
            continue;
        }
        let (_, source) = events.pop().expect("peeked arrival");

        // Keep the source's stream flowing before anything else, so
        // admission decisions can't perturb arrival times.  The buffer
        // refills through the batched sampler; the push gate below runs
        // per arrival, exactly as the per-draw path did.
        {
            if arrival_bufs[source].is_empty() {
                let _g = phases.as_ref().map(|ph| ph.arrival.enter());
                gens[source].refill(ARRIVAL_BATCH, &mut arrival_bufs[source]);
                arrival_refills += 1;
                arrival_samples += ARRIVAL_BATCH as u64;
            }
            let next = arrival_bufs[source][0];
            if next <= config.horizon_cycles && arrivals_pushed < config.max_jobs {
                arrival_bufs[source].pop_front();
                events.push(next, PRIORITY_ARRIVAL, source);
                arrivals_pushed += 1;
            }
        }

        let tmpl = &config.sources[source].template;
        let seq = per_source_seq[source];
        per_source_seq[source] += 1;
        submitted += 1;
        sink.on_submitted();

        let hi = {
            let _g = phases.as_ref().map(|ph| ph.dispatch.enter());
            choose_shard(
                config.policy,
                now,
                &shards,
                &mut rr_cursor,
                &tenant_cycles,
                source,
            )
        };
        let _g_admission = phases.as_ref().map(|ph| ph.admission.enter());
        let shard_name = config.shards[hi].name.as_str();
        let backlog = shards[hi].busy_until.saturating_sub(now);
        shards[hi].peak_backlog_cycles = shards[hi].peak_backlog_cycles.max(backlog);
        funnel[hi].offered += 1;
        let est = estimate[source * n_shards + hi];

        let reject_reason = if shards[hi].outstanding >= config.max_outstanding {
            Some(RejectReason::QueueFull {
                capacity: config.max_outstanding as usize,
            })
        } else if config
            .max_backlog_cycles
            .is_some_and(|limit| backlog > limit)
        {
            Some(RejectReason::Overloaded {
                backlog_cycles: backlog,
                limit_cycles: config.max_backlog_cycles.unwrap_or(0),
            })
        } else if tmpl
            .deadline_cycles
            .is_some_and(|d| backlog + est > d)
        {
            Some(RejectReason::DeadlineInfeasible {
                projected_cycles: backlog + est,
                deadline_cycles: tmpl.deadline_cycles.unwrap_or(0),
            })
        } else {
            None
        };
        if let Some(reason) = reject_reason {
            rejected += 1;
            shard_reports[hi].rejected += 1;
            let slot = match reason {
                RejectReason::QueueFull { .. } => {
                    funnel[hi].queue_full += 1;
                    0
                }
                RejectReason::Overloaded { .. } => {
                    funnel[hi].overloaded += 1;
                    1
                }
                _ => {
                    funnel[hi].deadline_infeasible += 1;
                    2
                }
            };
            sink.on_rejected(hi, slot, reason.slug(), shard_name);
            reject_counts[source * REJECT_SLUGS.len() + slot] += 1;
            // The log caps out within the first 10⁴ decisions of
            // a multi-million-job run; skip the record (and its
            // string formatting) entirely once it is full.
            if event_log.len() < event_log_cap {
                event_log.push(OnlineEvent {
                    job: format!("{}#{seq}", tmpl.name),
                    template: tmpl.name.clone(),
                    tenant: tmpl.tenant.clone(),
                    shard: shard_name.to_string(),
                    outcome: "rejected",
                    reason: Some(reason.slug()),
                    arrival_cycle: now,
                    start_cycle: now,
                    completion_cycle: now,
                });
            } else {
                events_truncated += 1;
            }
            continue;
        }

        let cycles = exact[source * n_shards + hi];
        let start = shards[hi].busy_until.max(now);
        let completion = start + cycles;
        if let Some(d) = tmpl.deadline_cycles {
            if completion > now + d {
                let reason = ShedReason::DeadlineMissed {
                    completion_cycle: completion,
                    deadline_cycles: now + d,
                };
                shed += 1;
                shard_reports[hi].shed += 1;
                funnel[hi].shed_deadline += 1;
                sink.on_shed(hi, reason.slug(), shard_name);
                deferred_sheds.push((source as u32, reason.slug(), now));
                if event_log.len() < event_log_cap {
                    event_log.push(OnlineEvent {
                        job: format!("{}#{seq}", tmpl.name),
                        template: tmpl.name.clone(),
                        tenant: tmpl.tenant.clone(),
                        shard: shard_name.to_string(),
                        outcome: "shed",
                        reason: Some(reason.slug()),
                        arrival_cycle: now,
                        start_cycle: now,
                        completion_cycle: now,
                    });
                } else {
                    events_truncated += 1;
                }
                continue;
            }
        }

        // Dispatch.
        shards[hi].busy_until = completion;
        shards[hi].outstanding += 1;
        shards[hi].peak_outstanding =
            shards[hi].peak_outstanding.max(shards[hi].outstanding);
        shards[hi].peak_backlog_cycles =
            shards[hi].peak_backlog_cycles.max(completion - now);
        funnel[hi].dispatched += 1;
        *tenant_cycles.entry((source, hi)).or_default() += cycles;
        shard_reports[hi].completed += 1;
        shard_reports[hi].busy_cycles += cycles;
        shard_reports[hi].last_completion_cycle =
            shard_reports[hi].last_completion_cycle.max(completion);
        sink.on_completed(hi, shard_name, start - now);
        lanes.push(hi, completion);
        completed_recs.push(CompletedRec {
            source: source as u32,
            shard: hi as u32,
            arrival: now,
            completion,
        });
        if event_log.len() < event_log_cap {
            event_log.push(OnlineEvent {
                job: format!("{}#{seq}", tmpl.name),
                template: tmpl.name.clone(),
                tenant: tmpl.tenant.clone(),
                shard: shard_name.to_string(),
                outcome: "completed",
                reason: None,
                arrival_cycle: now,
                start_cycle: start,
                completion_cycle: completion,
            });
        } else {
            events_truncated += 1;
        }
    }
    // The drop count is also a counter, so a truncated decision log is
    // visible in every metrics export, not just in the report.
    m.counter("engine.decision_log.truncated").add(events_truncated);

    // Report-evaluation phase: the only parallel section.  One
    // NetworkReport per distinct (source × shard) pair that completed at
    // least one job; merged by pair index, so worker count is invisible.
    let g_schedule = phases.as_ref().map(|ph| ph.schedule.enter());
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    {
        let mut seen = vec![false; config.sources.len() * n_shards];
        for rec in &completed_recs {
            let key = rec.source as usize * n_shards + rec.shard as usize;
            if !seen[key] {
                seen[key] = true;
                pairs.push((rec.source as usize, rec.shard as usize));
            }
        }
        pairs.sort_unstable();
    }
    let mut characs: Vec<Option<Arc<bsc_mac::ppa::DesignCharacterization>>> =
        vec![None; n_shards];
    for &(_, hi) in &pairs {
        if characs[hi].is_none() {
            let mut cc = config.shards[hi].accel.characterize.clone();
            cc.length = config.shards[hi].accel.array.vector_length;
            characs[hi] = Some(
                CharacterizationCache::global()
                    .get_or_characterize(config.shards[hi].accel.kind, &cc)?,
            );
        }
    }
    let reports: Vec<Result<NetworkReport, AccelError>> = bsc_netlist::par::run_indexed_with(
        pairs.len(),
        config.workers,
        || (),
        |(), i| {
            let (si, hi) = pairs[i];
            let accel = Accelerator::with_shared_characterization(
                config.shards[hi].accel.clone(),
                Arc::clone(characs[hi].as_ref().expect("characterized above")),
            );
            accel.run_network(&networks[si])
        },
    );
    let mut pair_reports: BTreeMap<(usize, usize), NetworkReport> = BTreeMap::new();
    for (&pair, report) in pairs.iter().zip(reports) {
        pair_reports.insert(pair, report?);
    }
    drop(g_schedule);

    // Serial SLO fold.  Order never matters for the accountant's BTree
    // state, but folding deferred decisions then completions keeps the
    // walk obvious.  The window width derives from the full horizon —
    // completions may legitimately land past the arrival horizon.
    let g_slo = phases.as_ref().map(|ph| ph.slo.enter());
    let makespan = completed_recs.iter().map(|r| r.completion).max().unwrap_or(0);
    let horizon = config.horizon_cycles.max(makespan);
    let mut acc = SloAccountant::new(window_width_for_horizon(horizon));
    for s in &config.sources {
        if let Some(target) = s.template.slo {
            acc.declare_target(s.template.tenant.clone(), target);
        }
    }
    // Rejections fold as grouped counts — observe_rejections(n) is
    // defined as n observe_rejection calls, and rejections feed no
    // windowed series, so grouping is exactly equivalent to the old
    // per-event walk.  Sheds need their decision cycle and fold
    // per event.
    for (si, counts) in reject_counts.chunks(REJECT_SLUGS.len()).enumerate() {
        let tenant = &config.sources[si].template.tenant;
        for (slot, &n) in counts.iter().enumerate() {
            if n > 0 {
                acc.observe_rejections(tenant, REJECT_SLUGS[slot], n);
            }
        }
    }
    for &(si, slug, cycle) in &deferred_sheds {
        acc.observe_shed(&config.sources[si as usize].template.tenant, slug, cycle);
    }
    for rec in &completed_recs {
        let tmpl = &config.sources[rec.source as usize].template;
        let report = &pair_reports[&(rec.source as usize, rec.shard as usize)];
        acc.observe_completion(
            &tmpl.tenant,
            rec.completion - rec.arrival,
            rec.completion,
            tmpl.deadline_cycles.map(|_| true),
            report,
        );
        let sr = &mut shard_reports[rec.shard as usize];
        sr.macs += report.total_macs();
        for layer in report.layers() {
            sr.energy_fj += quantize_energy_fj(layer.energy_fj);
        }
    }
    for (sr, st) in shard_reports.iter_mut().zip(&shards) {
        sr.peak_outstanding = st.peak_outstanding;
        sr.peak_backlog_cycles = st.peak_backlog_cycles;
    }
    let completed = completed_recs.len() as u64;
    let slo_observations = acc.observations();
    let slo_report = acc.report();
    drop(g_slo);
    m.gauge("engine.online.makespan_cycles").set(makespan.min(i64::MAX as u64) as i64);

    // Flush the batched per-job metrics into the registry exactly once.
    // The profiler's `metric_increments` is *derived from the flush* —
    // the accumulator counted every update as it happened — instead of a
    // hand-maintained per-outcome formula that could drift from the real
    // increment count.  The shadow mode already hit the registry per
    // event, so it reports the classic formula (pinned equal to the
    // derivation by a unit test).
    let metric_increments = match &sink {
        MetricSink::Batched { local, .. } => {
            local.flush_into(m);
            local.increments()
        }
        MetricSink::Shadow(_) => submitted + 2 * (rejected + shed) + 3 * completed,
    };

    // Flush the deterministic work tallies into the profiler.  Every
    // value below is a pure function of `config` (the parallel report
    // phase merges by pair index), so the counter side of the profile is
    // byte-identical at any worker count.
    if let Some(ph) = phases.as_ref() {
        ph.arrival.add("samples", arrival_samples);
        ph.arrival.add("refills", arrival_refills);
        ph.arrival.add("arrivals_enqueued", arrivals_pushed);

        // Logical event deliveries (arrivals + completions); actual
        // BinaryHeap traffic is arrivals-only — completions move through
        // the monotone lanes and surface as `lane_pushes` /
        // `completion_bursts`.
        ph.dispatch.add("events_popped", events.pops() + lanes.pops());
        ph.dispatch.add("arrivals_popped", submitted);
        ph.dispatch.add("completions_popped", lanes.pops());
        ph.dispatch.add("completion_bursts", completion_bursts);
        ph.dispatch.add("lane_pushes", lanes.pushes());
        ph.dispatch.add("heap_pushes", events.pushes());
        ph.dispatch.add("heap_ops", events.pushes() + events.pops());
        ph.dispatch.add("decisions", submitted);
        // Shards examined per decision: round-robin reads one cursor,
        // the other policies scan every shard.
        let scan = match config.policy {
            DispatchPolicy::RoundRobin => 1,
            _ => n_shards as u64,
        };
        ph.dispatch.add("shard_scans", submitted * scan);

        ph.admission.add("offered", submitted);
        ph.admission.add("rejected_queue_full", funnel.iter().map(|f| f.queue_full).sum());
        ph.admission.add("rejected_overloaded", funnel.iter().map(|f| f.overloaded).sum());
        ph.admission.add(
            "rejected_deadline_infeasible",
            funnel.iter().map(|f| f.deadline_infeasible).sum(),
        );
        ph.admission.add("shed_deadline_missed", shed);
        ph.admission.add("dispatched", completed);
        // Tenant-cycle map writes (one per dispatch) plus the reads the
        // tenant-fair scan performs per decision.
        let tf_reads = match config.policy {
            DispatchPolicy::TenantFair => submitted * n_shards as u64,
            _ => 0,
        };
        ph.admission.add("tenant_map_touches", completed + tf_reads);
        // Metric updates per arrival, as counted by the accumulator
        // itself: one `submitted` increment, two per rejection/shed
        // (plain + labeled), three per completion (plain + labeled +
        // wait histogram).
        ph.admission.add("metric_increments", metric_increments);
        ph.admission.add("log_appends", event_log.len() as u64);
        ph.admission.add("log_dropped", events_truncated);

        ph.schedule.add("cycle_tables", (config.sources.len() * n_shards) as u64);
        ph.schedule.add("pairs_evaluated", pairs.len() as u64);
        ph.schedule
            .add("layers_evaluated", pair_reports.values().map(|r| r.layers().len() as u64).sum());

        ph.slo.add("observations", slo_observations);
        ph.slo.add("completions_folded", completed);
        ph.slo.add("depth_samples", depth.iter().map(|d| d.samples.len() as u64).sum());
    }

    Ok(OnlineReport {
        policy: config.policy,
        seed: config.seed,
        horizon_cycles: config.horizon_cycles,
        submitted,
        completed,
        rejected,
        shed,
        makespan_cycles: makespan,
        shards: shard_reports,
        slo: slo_report,
        events: event_log,
        events_truncated,
        depth_stride_cycles: stride,
        depth,
        funnel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::ArrivalProcess;
    use bsc_mac::Precision;
    use bsc_nn::{Layer, LayerKind, Network};

    fn toy_net(name: &str, fan_in: usize, fan_out: usize, p: Precision) -> SharedNetwork {
        Network {
            name: name.into(),
            dataset: "unit".into(),
            layers: vec![Layer::new("fc", LayerKind::Fc { fan_in, fan_out }, p)],
        }
        .into_shared()
    }

    fn quick_shards() -> Vec<ShardSpec> {
        [MacKind::Bsc, MacKind::Lpc, MacKind::Hps]
            .into_iter()
            .enumerate()
            .map(|(i, kind)| ShardSpec {
                name: format!("shard{i}"),
                accel: AcceleratorConfig::quick(kind),
            })
            .collect()
    }

    fn quick_config(policy: DispatchPolicy, workers: Option<usize>) -> OnlineConfig {
        OnlineConfig {
            shards: quick_shards(),
            policy,
            seed: 7,
            horizon_cycles: 200_000,
            max_jobs: 10_000,
            max_outstanding: 8,
            max_backlog_cycles: Some(50_000),
            event_log_cap: EVENT_LOG_CAP,
            workers,
            sources: vec![
                TrafficSource {
                    template: JobTemplate {
                        name: "steady".into(),
                        tenant: TenantId::new("gold"),
                        network: toy_net("a", 64, 8, Precision::Int8),
                        precision: PrecisionPolicy::AsTrained,
                        deadline_cycles: Some(20_000),
                        slo: Some(SloTarget {
                            latency_p99_cycles: 50_000,
                            min_goodput: 0.5,
                        }),
                    },
                    process: ArrivalProcess::Poisson { mean_interarrival_cycles: 500 },
                },
                TrafficSource {
                    template: JobTemplate {
                        name: "burst".into(),
                        tenant: TenantId::new("bronze"),
                        network: toy_net("b", 128, 16, Precision::Int4),
                        precision: PrecisionPolicy::AsTrained,
                        deadline_cycles: None,
                        slo: None,
                    },
                    process: ArrivalProcess::Bursty {
                        on_cycles: 5_000,
                        off_cycles: 20_000,
                        mean_interarrival_cycles: 200,
                    },
                },
            ],
        }
    }

    #[test]
    fn online_report_is_worker_count_independent() {
        let runs: Vec<OnlineReport> = [Some(1), Some(2), Some(8)]
            .into_iter()
            .map(|w| {
                run_online(&quick_config(DispatchPolicy::LeastOutstanding, w), &Telemetry::metrics_only())
                    .unwrap()
            })
            .collect();
        assert!(runs[0].submitted > 100, "traffic actually flowed");
        assert!(runs[0].completed > 0);
        for r in &runs[1..] {
            assert_eq!(r.submitted, runs[0].submitted);
            assert_eq!(r.shards, runs[0].shards);
            assert_eq!(r.slo, runs[0].slo);
            assert_eq!(r.events, runs[0].events);
            assert_eq!(r.depth, runs[0].depth);
            assert_eq!(r.funnel, runs[0].funnel);
        }
    }

    #[test]
    fn profile_counters_are_worker_count_independent() {
        use bsc_telemetry::profile::profile_json;
        let snaps: Vec<String> = [Some(1), Some(2), Some(8)]
            .into_iter()
            .map(|w| {
                let prof = Profiler::new();
                run_online_profiled(
                    &quick_config(DispatchPolicy::TenantFair, w),
                    &Telemetry::metrics_only(),
                    Some(&prof),
                )
                .unwrap();
                let mut snap = prof.snapshot();
                // Deterministic side only: wall-clock is machine noise.
                for p in &mut snap.phases {
                    p.wall_ns = 0;
                }
                profile_json(&snap)
            })
            .collect();
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[0], snaps[2]);
    }

    #[test]
    fn profiled_run_reproduces_the_unprofiled_report() {
        let config = quick_config(DispatchPolicy::LeastOutstanding, Some(2));
        let plain = run_online(&config, &Telemetry::metrics_only()).unwrap();
        let prof = Profiler::new();
        let profiled =
            run_online_profiled(&config, &Telemetry::metrics_only(), Some(&prof)).unwrap();
        assert_eq!(plain.shards, profiled.shards);
        assert_eq!(plain.slo, profiled.slo);
        assert_eq!(plain.events, profiled.events);
        assert_eq!(plain.depth, profiled.depth);
        assert_eq!(plain.funnel, profiled.funnel);
        // The profiler actually saw the run.
        let snap = prof.snapshot();
        let dispatch = snap.phase("dispatch").unwrap();
        assert_eq!(dispatch.counter("arrivals_popped"), plain.submitted);
        assert_eq!(
            dispatch.counter("events_popped"),
            plain.submitted + plain.completed,
            "every dispatch pushes exactly one completion"
        );
        let admission = snap.phase("admission").unwrap();
        assert_eq!(admission.counter("offered"), plain.submitted);
        assert_eq!(admission.counter("dispatched"), plain.completed);
        assert_eq!(
            snap.phase("slo-fold").unwrap().counter("observations"),
            plain.submitted,
            "every arrival is observed exactly once"
        );
    }

    #[test]
    fn funnel_stages_partition_offered_arrivals() {
        let mut config = quick_config(DispatchPolicy::RoundRobin, Some(1));
        config.sources[0].template.deadline_cycles = Some(9_000);
        let report = run_online(&config, &Telemetry::metrics_only()).unwrap();
        assert_eq!(report.funnel.len(), report.shards.len());
        let mut offered_total = 0;
        for (f, s) in report.funnel.iter().zip(&report.shards) {
            assert_eq!(f.shard, s.name);
            assert_eq!(
                f.offered,
                f.queue_full + f.overloaded + f.deadline_infeasible + f.shed_deadline
                    + f.dispatched,
                "funnel stages must partition {}",
                f.shard
            );
            assert_eq!(f.dispatched, s.completed);
            assert_eq!(f.queue_full + f.overloaded + f.deadline_infeasible, s.rejected);
            assert_eq!(f.shed_deadline, s.shed);
            offered_total += f.offered;
        }
        assert_eq!(offered_total, report.submitted);
    }

    #[test]
    fn depth_series_samples_on_the_stride_grid() {
        let config = quick_config(DispatchPolicy::LeastOutstanding, Some(2));
        let report = run_online(&config, &Telemetry::metrics_only()).unwrap();
        let stride = report.depth_stride_cycles;
        assert_eq!(stride, depth_stride_for_horizon(config.horizon_cycles));
        assert!(stride.is_power_of_two());
        assert_eq!(report.depth.len(), report.shards.len());
        for d in &report.depth {
            assert!(!d.samples.is_empty(), "busy shard {} must be sampled", d.shard);
            for pair in d.samples.windows(2) {
                assert!(pair[0].cycle < pair[1].cycle, "samples must advance");
            }
            for s in &d.samples {
                assert_eq!(s.cycle % stride, 0, "samples sit on the stride grid");
            }
        }
        // The peaks bound the sampled series.
        for (d, s) in report.depth.iter().zip(&report.shards) {
            let max_out = d.samples.iter().map(|x| x.outstanding).max().unwrap_or(0);
            assert!(max_out <= s.peak_outstanding);
        }
    }

    #[test]
    fn tiny_event_log_cap_truncates_and_counts() {
        let mut config = quick_config(DispatchPolicy::RoundRobin, Some(1));
        config.event_log_cap = 5;
        let tel = Telemetry::metrics_only();
        let report = run_online(&config, &tel).unwrap();
        assert_eq!(report.events.len(), 5);
        assert_eq!(report.events_truncated, report.submitted - 5);
        assert_eq!(
            tel.metrics.snapshot().counter("engine.decision_log.truncated"),
            report.events_truncated,
            "silent truncation must surface as a counter"
        );
        // An uncapped run drops nothing and the counter reads zero.
        let tel2 = Telemetry::metrics_only();
        config.event_log_cap = EVENT_LOG_CAP;
        let full = run_online(&config, &tel2).unwrap();
        assert_eq!(full.events_truncated, 0);
        assert_eq!(tel2.metrics.snapshot().counter("engine.decision_log.truncated"), 0);
    }

    #[test]
    fn round_robin_touches_every_shard() {
        let report =
            run_online(&quick_config(DispatchPolicy::RoundRobin, Some(2)), &Telemetry::metrics_only())
                .unwrap();
        for s in &report.shards {
            assert!(
                s.completed + s.rejected + s.shed > 0,
                "round-robin must route to {}",
                s.name
            );
        }
        assert_eq!(
            report.submitted,
            report.completed + report.rejected + report.shed,
            "every arrival gets exactly one outcome"
        );
    }

    #[test]
    fn policies_are_deterministic_but_distinct() {
        let tel = Telemetry::metrics_only;
        let rr = run_online(&quick_config(DispatchPolicy::RoundRobin, Some(2)), &tel()).unwrap();
        let rr2 = run_online(&quick_config(DispatchPolicy::RoundRobin, Some(2)), &tel()).unwrap();
        let lo = run_online(&quick_config(DispatchPolicy::LeastOutstanding, Some(2)), &tel()).unwrap();
        assert_eq!(rr.events, rr2.events, "same config, same stream");
        // Same arrivals, different placement bookkeeping.
        assert_eq!(rr.submitted, lo.submitted);
    }

    #[test]
    fn tenant_fair_spreads_one_tenant_across_shards() {
        let mut config = quick_config(DispatchPolicy::TenantFair, Some(2));
        config.sources.truncate(1); // single hot tenant
        let report = run_online(&config, &Telemetry::metrics_only()).unwrap();
        let used = report.shards.iter().filter(|s| s.completed > 0).count();
        assert!(used >= 2, "tenant-fair must not pin one tenant to one shard");
    }

    #[test]
    fn deadlines_reject_or_shed_under_pressure() {
        let mut config = quick_config(DispatchPolicy::RoundRobin, Some(1));
        // Deadline below even the estimate: every arrival of source 0 is
        // rejected as infeasible.
        config.sources[0].template.deadline_cycles = Some(1);
        let report = run_online(&config, &Telemetry::metrics_only()).unwrap();
        assert!(report.rejected > 0);
        let gold = report.slo.tenant("gold").expect("gold tenant present");
        assert_eq!(gold.completed, 0);
        assert!(gold
            .rejected_by_reason
            .iter()
            .any(|(slug, n)| slug == "deadline_infeasible" && *n == gold.rejected));
    }

    #[test]
    fn online_latency_is_completion_minus_arrival() {
        let config = quick_config(DispatchPolicy::LeastOutstanding, Some(2));
        let report = run_online(&config, &Telemetry::metrics_only()).unwrap();
        // Every logged completed event's latency is bounded by the SLO
        // sketch's max.
        let max_latency: u64 = report
            .events
            .iter()
            .filter(|e| e.outcome == "completed")
            .map(|e| e.completion_cycle - e.arrival_cycle)
            .max()
            .unwrap();
        let sketch_max = report
            .slo
            .tenants
            .iter()
            .map(|t| t.latency.max)
            .max()
            .unwrap();
        assert!(max_latency <= sketch_max || report.events_truncated > 0);
        assert!(sketch_max > 0);
    }
}
