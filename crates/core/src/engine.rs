//! Multi-tenant batch inference engine.
//!
//! [`Accelerator::run_network`] is a one-shot, single-tenant call: every
//! construction re-characterizes the design and every caller runs one
//! network at a time.  The [`Engine`] turns the same analytic pipeline
//! into a serving loop:
//!
//! * a process-wide [`CharacterizationCache`] characterizes each
//!   `(MacKind, CharacterizeConfig)` design **once** and shares it across
//!   every engine, accelerator and test in the binary;
//! * [`InferenceJob`]s (an [`Arc`]-shared network + a
//!   [`PrecisionPolicy`] + an optional deadline in model cycles) are
//!   admitted into a [`BoundedQueue`] — a full queue *rejects with a
//!   reason* instead of growing without bound;
//! * admission is deadline-aware: a job whose optimistic completion
//!   already misses its deadline is rejected up front, and a configured
//!   backlog limit sheds load before the array is hopelessly behind;
//! * [`Engine::run_batch`] schedules the admitted jobs over the
//!   `bsc_netlist::par` work-stealing pool and merges per-job
//!   [`JobReport`]s **in submission order**, so results are independent
//!   of the worker count, exactly like the sharded characterization.
//!
//! Every scheduling decision (admit / reject / shed, queue waits, start
//! and completion cycles) is computed on a *serial virtual clock* in
//! submission order; the worker pool only parallelizes the per-job
//! energy/schedule evaluation, which is pure.  A batch therefore has one
//! deterministic outcome per job — `{completed, rejected, shed}` — at
//! any worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use bsc_mac::ppa::{CharacterizeConfig, DesignCharacterization};
use bsc_mac::{MacKind, Precision};
use bsc_nn::{Network, SharedNetwork};
use bsc_systolic::mem::schedule_conv_with_memory;
use bsc_telemetry::Telemetry;

use crate::queue::BoundedQueue;
use crate::report::NetworkReport;
use crate::slo::{window_width_for_horizon, SloAccountant, SloReport, SloTarget, TenantId};
use crate::{layer_to_conv_shape, AccelError, Accelerator, AcceleratorConfig};

/// Bucket bounds (model cycles) for the `engine.queue.wait_cycles`
/// histogram: powers of four from 1Ki to 1Gi cycles, so queue waits from
/// a single small layer up to a saturated batch all land in finite
/// buckets.
pub(crate) const QUEUE_WAIT_BOUNDS_CYCLES: &[u64] = &[
    0,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
];

// ---------------------------------------------------------------------------
// Characterization cache
// ---------------------------------------------------------------------------

/// A shared cache of gate-level design characterizations keyed by
/// `(MacKind, CharacterizeConfig)`.
///
/// Characterization (netlist build + activity testbench in all precision
/// modes) is the most expensive construction in the stack; the cache
/// guarantees each distinct design is characterized at most once per
/// process.  The array geometry (`ArrayConfig`) enters the key only
/// through its `vector_length` (folded into the `CharacterizeConfig` by
/// the callers): PPA characterization is per-MAC, so arrays that differ
/// only in PE count share an entry.
///
/// The entry lock is held *across* a characterization run, so concurrent
/// requests for the same design block and then hit the cache instead of
/// duplicating the work.
#[derive(Debug, Default)]
pub struct CharacterizationCache {
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct CacheEntry {
    kind: MacKind,
    config: CharacterizeConfig,
    charac: Arc<DesignCharacterization>,
}

impl CharacterizationCache {
    /// An empty cache.
    pub fn new() -> Self {
        CharacterizationCache::default()
    }

    /// The process-wide cache every `*_cached` constructor and every
    /// [`Engine::new`] uses.  Test binaries route through this to prove
    /// (via [`CharacterizationCache::publish`]) that each design was
    /// characterized at most once.
    pub fn global() -> &'static CharacterizationCache {
        static GLOBAL: OnceLock<CharacterizationCache> = OnceLock::new();
        GLOBAL.get_or_init(CharacterizationCache::new)
    }

    /// Returns the cached characterization for `(kind, config)`, running
    /// and inserting it on first use.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures from a cache miss.
    pub fn get_or_characterize(
        &self,
        kind: MacKind,
        config: &CharacterizeConfig,
    ) -> Result<Arc<DesignCharacterization>, AccelError> {
        let mut entries = self.entries.lock().expect("characterization cache poisoned");
        if let Some(e) = entries.iter().find(|e| e.kind == kind && e.config == *config) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&e.charac));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let charac = Arc::new(DesignCharacterization::new(kind, config)?);
        entries.push(CacheEntry { kind, config: config.clone(), charac: Arc::clone(&charac) });
        Ok(charac)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that ran a characterization (== distinct designs
    /// characterized through this cache).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("characterization cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes the cache statistics into a metrics registry:
    /// `engine.cache.hits`, `engine.cache.misses` and
    /// `telemetry.characterize.runs` (the process-wide characterization
    /// count from [`bsc_mac::ppa::characterize_runs`], which also covers
    /// constructions that bypassed the cache).  Idempotent, like
    /// [`Telemetry::publish_trace_stats`].
    pub fn publish(&self, tel: &Telemetry) {
        let raise = |name: &str, value: u64| {
            let c = tel.metrics.counter(name);
            c.add(value.saturating_sub(c.get()));
        };
        raise("engine.cache.hits", self.hits());
        raise("engine.cache.misses", self.misses());
        raise("telemetry.characterize.runs", bsc_mac::ppa::characterize_runs());
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// How a job maps its network's layer precisions onto the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionPolicy {
    /// Run every layer at its NAS-assigned (trained) precision.
    AsTrained,
    /// Force every layer to one precision mode.
    Uniform(Precision),
}

impl PrecisionPolicy {
    /// The network this policy actually runs: the shared handle itself
    /// for [`PrecisionPolicy::AsTrained`] (no clone), or a re-precisioned
    /// copy for [`PrecisionPolicy::Uniform`].
    pub fn apply(self, network: &SharedNetwork) -> SharedNetwork {
        match self {
            PrecisionPolicy::AsTrained => Arc::clone(network),
            PrecisionPolicy::Uniform(p) => Arc::new(network.with_uniform_precision(p)),
        }
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecisionPolicy::AsTrained => f.write_str("as-trained"),
            PrecisionPolicy::Uniform(p) => write!(f, "{p}"),
        }
    }
}

impl std::str::FromStr for PrecisionPolicy {
    type Err = bsc_mac::MacError;

    /// Parses `"nas"` / `"as-trained"` / `"mixed"` (keep trained
    /// precisions) or any [`Precision`] spelling (`"int8"`, `"4-bit"`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "nas" | "as-trained" | "trained" | "mixed" => Ok(PrecisionPolicy::AsTrained),
            other => Ok(PrecisionPolicy::Uniform(other.parse()?)),
        }
    }
}

/// One tenant request: a network, a precision policy and an optional
/// completion deadline in *model cycles* (cycles of the engine's virtual
/// batch clock, which starts at 0 every batch).
#[derive(Debug, Clone)]
pub struct InferenceJob {
    /// Job name (unique names make reports readable; not enforced).
    pub name: String,
    /// The tenant the job is accounted to (latency sketches, shed rates
    /// and energy attribution in the batch's [`SloReport`]).
    pub tenant: TenantId,
    /// The network to run, shared without cloning.
    pub network: SharedNetwork,
    /// Precision policy applied at admission.
    pub policy: PrecisionPolicy,
    /// Absolute deadline on the batch clock, if any.
    pub deadline_cycles: Option<u64>,
    /// The tenant's declared SLO target, if any.  Submitting a job with
    /// a target declares it for the whole tenant in this batch (last
    /// declaration wins).
    pub slo: Option<SloTarget>,
}

impl InferenceJob {
    /// A job with the default policy ([`PrecisionPolicy::AsTrained`]),
    /// the `"default"` tenant and no deadline.
    pub fn new(name: impl Into<String>, network: SharedNetwork) -> Self {
        InferenceJob {
            name: name.into(),
            tenant: TenantId::default(),
            network,
            policy: PrecisionPolicy::AsTrained,
            deadline_cycles: None,
            slo: None,
        }
    }

    /// Sets the precision policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the completion deadline in model cycles.
    pub fn with_deadline(mut self, cycles: u64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Sets the owning tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = TenantId::new(tenant);
        self
    }

    /// Declares the tenant's SLO target.
    pub fn with_slo(mut self, target: SloTarget) -> Self {
        self.slo = Some(target);
        self
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity (backpressure).
    QueueFull {
        /// Configured queue bound.
        capacity: usize,
    },
    /// Even the optimistic completion estimate misses the deadline.
    DeadlineInfeasible {
        /// Estimated completion cycle at admission (backlog + ideal run).
        projected_cycles: u64,
        /// The job's deadline.
        deadline_cycles: u64,
    },
    /// Admitting the job would push the backlog past the configured
    /// overload limit.
    Overloaded {
        /// Backlog the job would have created.
        backlog_cycles: u64,
        /// Configured backlog limit.
        limit_cycles: u64,
    },
}

impl RejectReason {
    /// Machine-readable reason slug, the `reason` label of the
    /// `engine.jobs` metric family and the key of per-tenant rate
    /// breakdowns.
    pub fn slug(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::DeadlineInfeasible { .. } => "deadline_infeasible",
            RejectReason::Overloaded { .. } => "overloaded",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::DeadlineInfeasible { projected_cycles, deadline_cycles } => write!(
                f,
                "deadline infeasible (projected completion {projected_cycles} > deadline {deadline_cycles})"
            ),
            RejectReason::Overloaded { backlog_cycles, limit_cycles } => write!(
                f,
                "overloaded (backlog {backlog_cycles} cycles > limit {limit_cycles})"
            ),
        }
    }
}

/// Why an admitted job was dropped at schedule time instead of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The exact schedule (which the optimistic admission estimate
    /// under-approximates) puts completion past the deadline.
    DeadlineMissed {
        /// Completion cycle the exact schedule projected.
        completion_cycle: u64,
        /// The job's deadline.
        deadline_cycles: u64,
    },
}

impl ShedReason {
    /// Machine-readable reason slug (see [`RejectReason::slug`]).
    pub fn slug(&self) -> &'static str {
        match self {
            ShedReason::DeadlineMissed { .. } => "deadline_missed",
        }
    }

    /// The virtual-clock cycle at which the shed decision applies — the
    /// projected completion the scheduler refused — used to place the
    /// event on the dashboard's window axis.
    pub fn decision_cycle(&self) -> u64 {
        match *self {
            ShedReason::DeadlineMissed { completion_cycle, .. } => completion_cycle,
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShedReason::DeadlineMissed { completion_cycle, deadline_cycles } => write!(
                f,
                "deadline missed (scheduled completion {completion_cycle} > deadline {deadline_cycles})"
            ),
        }
    }
}

/// The completed execution of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Tenant the job is accounted to.
    pub tenant: TenantId,
    /// Cycles the job waited behind earlier jobs on the batch clock.
    pub queue_wait_cycles: u64,
    /// Batch-clock cycle at which the job finished.
    pub completion_cycle: u64,
    /// The job's deadline, if it had one.
    pub deadline_cycles: Option<u64>,
    /// Per-layer numerics — identical to what a serial
    /// [`Accelerator::run_network`] call produces for the same network.
    pub report: NetworkReport,
}

impl JobReport {
    /// Execution cycles (excluding queue wait).
    pub fn cycles(&self) -> u64 {
        self.report.total_cycles()
    }

    /// Useful MACs.
    pub fn macs(&self) -> u64 {
        self.report.total_macs()
    }

    /// Energy in fJ.
    pub fn energy_fj(&self) -> f64 {
        self.report.total_energy_fj()
    }

    /// Achieved MACs per execution cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        let c = self.cycles();
        if c == 0 { 0.0 } else { self.macs() as f64 / c as f64 }
    }

    /// Whether the deadline was met (`None` when the job had none).
    /// Always `true` for completed jobs — misses are shed, not run.
    pub fn deadline_met(&self) -> Option<bool> {
        self.deadline_cycles.map(|d| self.completion_cycle <= d)
    }
}

/// The single, mandatory terminal state of every submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job ran; per-layer numerics attached.
    Completed(JobReport),
    /// The job was refused at admission.
    Rejected {
        /// Job name.
        name: String,
        /// Tenant the rejection is accounted to.
        tenant: TenantId,
        /// Why admission refused it.
        reason: RejectReason,
    },
    /// The job was admitted but dropped at schedule time.
    Shed {
        /// Job name.
        name: String,
        /// Tenant the shed is accounted to.
        tenant: TenantId,
        /// Why the scheduler dropped it.
        reason: ShedReason,
    },
}

impl JobOutcome {
    /// The job's name.
    pub fn name(&self) -> &str {
        match self {
            JobOutcome::Completed(r) => &r.name,
            JobOutcome::Rejected { name, .. } | JobOutcome::Shed { name, .. } => name,
        }
    }

    /// `"completed"`, `"rejected"` or `"shed"`.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::Rejected { .. } => "rejected",
            JobOutcome::Shed { .. } => "shed",
        }
    }

    /// The tenant the outcome is accounted to.
    pub fn tenant(&self) -> &TenantId {
        match self {
            JobOutcome::Completed(r) => &r.tenant,
            JobOutcome::Rejected { tenant, .. } | JobOutcome::Shed { tenant, .. } => tenant,
        }
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Configuration of one [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The accelerator the jobs run on.
    pub accel: AcceleratorConfig,
    /// Bound of the admission queue (jobs).
    pub queue_capacity: usize,
    /// Worker threads for batch execution (`None` → one per available
    /// core, `Some(1)` → fully serial).  Results never depend on this.
    pub workers: Option<usize>,
    /// Overload limit: reject submissions whose admission would push the
    /// estimated backlog past this many cycles (`None` → unlimited).
    pub max_backlog_cycles: Option<u64>,
}

impl EngineConfig {
    /// Default serving parameters around an accelerator configuration.
    pub fn new(accel: AcceleratorConfig) -> Self {
        EngineConfig { accel, queue_capacity: 64, workers: None, max_backlog_cycles: None }
    }

    /// Quick-test engine: the reduced 4-PE × L8 array.
    pub fn quick(kind: MacKind) -> Self {
        EngineConfig::new(AcceleratorConfig::quick(kind))
    }

    /// Paper-faithful engine: the 32-PE × L32 array at 500 MHz.
    pub fn paper(kind: MacKind) -> Self {
        EngineConfig::new(AcceleratorConfig::paper(kind))
    }

    /// Sets the queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the overload backlog limit in cycles.
    pub fn with_max_backlog_cycles(mut self, cycles: u64) -> Self {
        self.max_backlog_cycles = Some(cycles);
        self
    }
}

/// An admitted job waiting in the bounded queue.
#[derive(Debug)]
struct Admitted {
    slot: usize,
    name: String,
    tenant: TenantId,
    network: SharedNetwork,
    deadline_cycles: Option<u64>,
}

/// One submission slot: either already decided (rejected) or waiting.
#[derive(Debug)]
enum Slot {
    Pending,
    Decided(JobOutcome),
}

/// The report of one [`Engine::run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    outcomes: Vec<JobOutcome>,
    /// High-water mark of the admission queue during this batch.
    pub peak_queue_depth: usize,
    /// Per-tenant SLO accounting folded from the outcomes (latency
    /// sketches, shed/reject rates, goodput, attainment, fJ-exact
    /// energy attribution).
    pub slo: SloReport,
}

impl BatchReport {
    /// Terminal states, one per submitted job, in submission order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Completed job reports in submission order.
    pub fn completed(&self) -> impl Iterator<Item = &JobReport> {
        self.outcomes.iter().filter_map(JobOutcome::report)
    }

    /// Number of jobs submitted for this batch.
    pub fn submitted(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of completed jobs.
    pub fn completed_count(&self) -> usize {
        self.completed().count()
    }

    /// Number of jobs rejected at admission.
    pub fn rejected_count(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, JobOutcome::Rejected { .. })).count()
    }

    /// Number of jobs shed at schedule time.
    pub fn shed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, JobOutcome::Shed { .. })).count()
    }

    /// Batch makespan on the model clock: the last completion cycle.
    pub fn makespan_cycles(&self) -> u64 {
        self.completed().map(|r| r.completion_cycle).max().unwrap_or(0)
    }

    /// Total useful MACs of the completed jobs.
    pub fn total_macs(&self) -> u64 {
        self.completed().map(JobReport::macs).sum()
    }

    /// Total energy of the completed jobs in fJ.
    pub fn total_energy_fj(&self) -> f64 {
        self.completed().map(JobReport::energy_fj).sum()
    }

    /// Batched throughput: completed MACs per makespan cycle.  The number
    /// the paper's 1024/4096/8192 MACs-per-cycle modes bound from above.
    pub fn macs_per_cycle(&self) -> f64 {
        let span = self.makespan_cycles();
        if span == 0 { 0.0 } else { self.total_macs() as f64 / span as f64 }
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} submitted / {} completed / {} rejected / {} shed, {} cycles, {:.1} MACs/cycle, peak queue {}",
            self.submitted(),
            self.completed_count(),
            self.rejected_count(),
            self.shed_count(),
            self.makespan_cycles(),
            self.macs_per_cycle(),
            self.peak_queue_depth,
        )?;
        for o in &self.outcomes {
            match o {
                JobOutcome::Completed(r) => writeln!(
                    f,
                    "  {:<24} completed  {:>10} cyc (wait {:>8})  {:>7.1} MACs/cyc  {:>10.0} fJ",
                    r.name,
                    r.cycles(),
                    r.queue_wait_cycles,
                    r.macs_per_cycle(),
                    r.energy_fj(),
                )?,
                JobOutcome::Rejected { name, reason, .. } => {
                    writeln!(f, "  {name:<24} rejected   {reason}")?
                }
                JobOutcome::Shed { name, reason, .. } => {
                    writeln!(f, "  {name:<24} shed       {reason}")?
                }
            }
        }
        Ok(())
    }
}

/// The admission-time cycle lower bound for `net` on `accel`: per layer
/// the larger of the compute floor (all MACs at peak MACs/cycle) and
/// the DMA floor ([`bsc_systolic::mem::dma_cycles_lower_bound`]) — the
/// shared implementation behind [`Engine::estimate_cycles`] and the
/// cluster dispatcher's per-shard admission checks.
pub(crate) fn estimate_cycles_for(accel: &AcceleratorConfig, net: &Network) -> u64 {
    net.layers
        .iter()
        .map(|l| {
            let peak = accel.array.peak_macs_per_cycle(l.precision) as u64;
            let compute = l.macs().div_ceil(peak.max(1));
            let shape = layer_to_conv_shape(&l.kind);
            let dma = bsc_systolic::mem::dma_cycles_lower_bound(
                &accel.array,
                &accel.mem,
                l.precision,
                &shape,
            );
            compute.max(dma)
        })
        .sum()
}

/// The exact stall-inclusive schedule cycles of `net` on `accel` — the
/// shared implementation behind [`Engine::schedule_cycles`] and the
/// cluster dispatcher's shard occupancy bookkeeping.
pub(crate) fn schedule_cycles_for(
    accel: &AcceleratorConfig,
    net: &Network,
) -> Result<u64, AccelError> {
    let mut cycles = 0u64;
    for layer in &net.layers {
        let shape = layer_to_conv_shape(&layer.kind);
        cycles +=
            schedule_conv_with_memory(&accel.array, &accel.mem, layer.precision, &shape)?
                .total_cycles;
    }
    Ok(cycles)
}

/// The multi-tenant batch inference engine.  See the module docs for the
/// admission / scheduling semantics.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    charac: Arc<DesignCharacterization>,
    queue: BoundedQueue<Admitted>,
    slots: Vec<Slot>,
    backlog_cycles: u64,
    slo_targets: std::collections::BTreeMap<TenantId, SloTarget>,
    telemetry: Telemetry,
}

impl Engine {
    /// Builds an engine on the process-wide
    /// [`CharacterizationCache::global`] cache.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures from a first-use
    /// characterization.
    pub fn new(config: EngineConfig) -> Result<Self, AccelError> {
        Self::with_cache(config, CharacterizationCache::global())
    }

    /// Builds an engine on an explicit cache (e.g. a scoped one in a
    /// test that asserts exact hit/miss counts).
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures from a cache miss.
    pub fn with_cache(
        config: EngineConfig,
        cache: &CharacterizationCache,
    ) -> Result<Self, AccelError> {
        let mut cc = config.accel.characterize.clone();
        cc.length = config.accel.array.vector_length;
        let charac = cache.get_or_characterize(config.accel.kind, &cc)?;
        Ok(Self::with_design(config, charac))
    }

    /// Builds an engine around an already-characterized design (e.g. one
    /// owned by a `Workbench`), avoiding any characterization pass.
    ///
    /// # Panics
    ///
    /// Panics if the characterization's architecture differs from the
    /// configured MAC kind.
    pub fn with_design(config: EngineConfig, charac: Arc<DesignCharacterization>) -> Self {
        assert_eq!(
            charac.kind(),
            config.accel.kind,
            "characterization architecture mismatch"
        );
        let queue = BoundedQueue::new(config.queue_capacity);
        Engine {
            config,
            charac,
            queue,
            slots: Vec::new(),
            backlog_cycles: 0,
            slo_targets: std::collections::BTreeMap::new(),
            telemetry: Telemetry::metrics_only(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared characterization the engine runs on.
    pub fn characterization(&self) -> &Arc<DesignCharacterization> {
        &self.charac
    }

    /// The engine's telemetry bundle (queue gauges, admission counters,
    /// per-job spans).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the telemetry bundle (e.g. one shared with other engines
    /// or a trace-capable ring).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Current estimated backlog of admitted-but-unrun work in cycles.
    pub fn backlog_cycles(&self) -> u64 {
        self.backlog_cycles
    }

    /// Number of jobs waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The optimistic cycle estimate admission uses: per layer, the
    /// larger of the compute floor (all MACs at peak MACs/cycle) and the
    /// DMA floor (the layer's minimum DRAM traffic through the configured
    /// channel — [`bsc_systolic::mem::dma_cycles_lower_bound`]).  Both
    /// floors are proven lower bounds on the stall-inclusive
    /// [`Engine::schedule_cycles`], so admission never rejects a feasible
    /// job; but unlike the old compute-only bound it *does* reject jobs
    /// whose DRAM traffic alone already overruns the deadline under a
    /// finite [`bsc_systolic::MemConfig`], instead of admitting them and
    /// shedding at execution.  With the default infinite hierarchy the
    /// DMA floor is zero and the estimate is unchanged.
    pub fn estimate_cycles(&self, net: &Network) -> u64 {
        estimate_cycles_for(&self.config.accel, net)
    }

    /// The exact schedule cycles of a network on this array (what
    /// `run_network` will report), without evaluating energy.  Includes
    /// DMA stall and drain cycles under the configured memory hierarchy,
    /// so shedding decisions see the bandwidth-limited latency; with the
    /// default infinite [`bsc_systolic::MemConfig`] this is exactly the
    /// compute-only schedule.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn schedule_cycles(&self, net: &Network) -> Result<u64, AccelError> {
        schedule_cycles_for(&self.config.accel, net)
    }

    /// Admits a job into the bounded queue, or rejects it with a reason.
    /// Either way the decision is recorded and reappears in the next
    /// [`Engine::run_batch`]'s outcomes, so every submission has exactly
    /// one terminal state.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when the queue is full, the backlog
    /// limit would be exceeded, or the deadline is already infeasible.
    pub fn submit(&mut self, job: InferenceJob) -> Result<usize, RejectReason> {
        let slot = self.slots.len();
        self.telemetry.metrics.counter("engine.jobs.submitted").inc();
        if let Some(target) = job.slo {
            self.slo_targets.insert(job.tenant.clone(), target);
        }
        let reject = |this: &mut Self, name: String, tenant: TenantId, reason: RejectReason| {
            this.telemetry.metrics.counter("engine.jobs.rejected").inc();
            this.telemetry
                .metrics
                .labeled_counter("engine.jobs")
                .with(&[("outcome", "rejected"), ("reason", reason.slug())])
                .inc();
            this.slots.push(Slot::Decided(JobOutcome::Rejected { name, tenant, reason }));
            Err(reason)
        };

        if self.queue.len() >= self.queue.capacity() {
            let reason = RejectReason::QueueFull { capacity: self.queue.capacity() };
            return reject(self, job.name, job.tenant, reason);
        }
        let network = job.policy.apply(&job.network);
        let est = self.estimate_cycles(&network);
        let projected = self.backlog_cycles + est;
        if let Some(limit) = self.config.max_backlog_cycles {
            if projected > limit {
                let reason =
                    RejectReason::Overloaded { backlog_cycles: projected, limit_cycles: limit };
                return reject(self, job.name, job.tenant, reason);
            }
        }
        if let Some(deadline) = job.deadline_cycles {
            if projected > deadline {
                let reason = RejectReason::DeadlineInfeasible {
                    projected_cycles: projected,
                    deadline_cycles: deadline,
                };
                return reject(self, job.name, job.tenant, reason);
            }
        }

        let admitted = Admitted {
            slot,
            name: job.name,
            tenant: job.tenant,
            network,
            deadline_cycles: job.deadline_cycles,
        };
        if self.queue.push(admitted).is_err() {
            unreachable!("capacity checked above");
        }
        self.slots.push(Slot::Pending);
        self.backlog_cycles = projected;
        let m = &self.telemetry.metrics;
        m.counter("engine.jobs.admitted").inc();
        m.gauge("engine.queue.depth").set(self.queue.len() as i64);
        m.gauge("engine.queue.peak_depth").set(self.queue.peak_depth() as i64);
        m.gauge("engine.backlog_cycles").set(self.backlog_cycles as i64);
        Ok(slot)
    }

    /// Schedules and runs every queued job, returning one terminal
    /// outcome per submission since the previous batch, in submission
    /// order.
    ///
    /// Scheduling (shed decisions, queue waits, completion cycles) runs
    /// serially on the virtual batch clock; execution fans out over the
    /// `bsc_netlist::par` pool with one [`Accelerator`] per worker, all
    /// sharing this engine's characterization.  Results are identical at
    /// any worker count.
    ///
    /// # Errors
    ///
    /// Propagates mapping/characterization failures of any scheduled job
    /// (the batch is abandoned; admission state is still consumed).
    pub fn run_batch(&mut self) -> Result<BatchReport, AccelError> {
        let _wall = self.telemetry.metrics.timer("engine.run_batch_ns");
        let _span = {
            let g = self.telemetry.spans.begin("engine.run_batch");
            g.annotate("queued", self.queue.len());
            g
        };
        let mut slots = std::mem::take(&mut self.slots);
        let queued: Vec<Admitted> = self.queue.drain().collect();
        let peak_queue_depth = self.queue.peak_depth();
        self.backlog_cycles = 0;
        let m = &self.telemetry.metrics;
        m.gauge("engine.queue.depth").set(0);
        m.gauge("engine.backlog_cycles").set(0);

        // Scheduling pass on the discrete-event clock: batch mode is the
        // degenerate DES workload where every admitted job arrives at
        // cycle 0 in submission order and the engine is a single shard.
        // The `(time, priority, seq)` contract of [`crate::des::EventQueue`]
        // delivers those arrivals FIFO, so the plan — exact per-job
        // cycles, shed decisions, queue waits — is byte-identical to the
        // historical serial loop, and no worker is involved: the source
        // of worker-count independence.
        struct Planned {
            job: Admitted,
            start_cycle: u64,
            completion_cycle: u64,
        }
        enum BatchEvent {
            Arrive(Box<Admitted>),
            Complete,
        }
        let mut events = crate::des::EventQueue::new();
        for job in queued {
            events.push(0, crate::des::PRIORITY_ARRIVAL, BatchEvent::Arrive(Box::new(job)));
        }
        let mut plan = Vec::with_capacity(events.len());
        let mut busy_until = 0u64;
        while let Some((now, event)) = events.pop() {
            let job = match event {
                // Completions free the (single) shard; with one shard the
                // busy-until gauge already encodes that, so they carry no
                // payload here.  Online serving gives them real work.
                BatchEvent::Complete => continue,
                BatchEvent::Arrive(job) => *job,
            };
            let cycles = self.schedule_cycles(&job.network)?;
            let start = busy_until.max(now);
            let completion = start + cycles;
            if let Some(deadline) = job.deadline_cycles {
                if completion > deadline {
                    let reason = ShedReason::DeadlineMissed {
                        completion_cycle: completion,
                        deadline_cycles: deadline,
                    };
                    m.counter("engine.jobs.shed").inc();
                    m.labeled_counter("engine.jobs")
                        .with(&[("outcome", "shed"), ("reason", reason.slug())])
                        .inc();
                    slots[job.slot] = Slot::Decided(JobOutcome::Shed {
                        name: job.name,
                        tenant: job.tenant,
                        reason,
                    });
                    continue;
                }
            }
            m.histogram("engine.queue.wait_cycles", QUEUE_WAIT_BOUNDS_CYCLES).record(start);
            events.push(completion, crate::des::PRIORITY_COMPLETION, BatchEvent::Complete);
            plan.push(Planned { job, start_cycle: start, completion_cycle: completion });
            busy_until = completion;
        }

        // Parallel execution: per-worker accelerators over the shared
        // characterization, merged back by plan index.
        let accel_cfg = self.config.accel.clone();
        let charac = Arc::clone(&self.charac);
        let telemetry = self.telemetry.clone();
        let reports: Vec<Result<NetworkReport, AccelError>> = bsc_netlist::par::run_indexed_with(
            plan.len(),
            self.config.workers,
            || {
                let mut accel =
                    Accelerator::with_shared_characterization(accel_cfg.clone(), Arc::clone(&charac));
                accel.attach_telemetry(telemetry.clone());
                accel
            },
            |accel, i| {
                let p = &plan[i];
                let _job_span = {
                    let g = accel.telemetry().expect("attached").spans.begin(&format!("engine.job.{}", p.job.name));
                    g.annotate("network", &p.job.network.name);
                    g.annotate("start_cycle", p.start_cycle);
                    g
                };
                accel.run_network(&p.job.network)
            },
        );

        for (p, report) in plan.into_iter().zip(reports) {
            let report = report?;
            m.counter("engine.jobs.completed").inc();
            m.labeled_counter("engine.jobs").with(&[("outcome", "completed")]).inc();
            m.counter("engine.batch.macs").add(report.total_macs());
            m.counter("engine.batch.cycles").add(report.total_cycles());
            slots[p.job.slot] = Slot::Decided(JobOutcome::Completed(JobReport {
                name: p.job.name,
                tenant: p.job.tenant,
                queue_wait_cycles: p.start_cycle,
                completion_cycle: p.completion_cycle,
                deadline_cycles: p.job.deadline_cycles,
                report,
            }));
        }

        let outcomes: Vec<JobOutcome> = slots
            .into_iter()
            .map(|s| match s {
                Slot::Decided(o) => o,
                Slot::Pending => unreachable!("every admitted job was planned or shed"),
            })
            .collect();

        // Serial SLO fold over the outcomes, in submission order: a pure
        // reduction of already-deterministic data, so the report is
        // bit-identical at any worker count.  The window width derives
        // from the batch horizon (latest completion or shed decision).
        let horizon = outcomes
            .iter()
            .map(|o| match o {
                JobOutcome::Completed(r) => r.completion_cycle,
                JobOutcome::Shed { reason, .. } => reason.decision_cycle(),
                JobOutcome::Rejected { .. } => 0,
            })
            .max()
            .unwrap_or(0);
        let mut accountant = SloAccountant::new(window_width_for_horizon(horizon));
        for (tenant, target) in std::mem::take(&mut self.slo_targets) {
            accountant.declare_target(tenant, target);
        }
        for outcome in &outcomes {
            accountant.observe(outcome);
        }
        // Fold-work accounting for the self-profiler: deterministic, so
        // it is safe in every metrics export.
        self.telemetry
            .metrics
            .counter("engine.slo.observations")
            .add(accountant.observations());
        Ok(BatchReport { outcomes, peak_queue_depth, slo: accountant.report() })
    }

    /// Convenience: submits every job (collecting rejections as
    /// outcomes) and runs the batch.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::run_batch`] failures.
    pub fn run_jobs(&mut self, jobs: Vec<InferenceJob>) -> Result<BatchReport, AccelError> {
        for job in jobs {
            // Rejections are recorded as outcomes; nothing to do here.
            let _ = self.submit(job);
        }
        self.run_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_nn::{Layer, LayerKind};

    fn toy_net(name: &str, fan_in: usize, fan_out: usize, p: Precision) -> SharedNetwork {
        Network {
            name: name.into(),
            dataset: "synthetic".into(),
            layers: vec![Layer::new("fc", LayerKind::Fc { fan_in, fan_out }, p)],
        }
        .into_shared()
    }

    #[test]
    fn cache_characterizes_each_design_once() {
        let cache = CharacterizationCache::new();
        let cfg = CharacterizeConfig::quick(2);
        let a = cache.get_or_characterize(MacKind::Hps, &cfg).unwrap();
        let b = cache.get_or_characterize(MacKind::Hps, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different config is a different design.
        let cfg3 = CharacterizeConfig::quick(1);
        let c = cache.get_or_characterize(MacKind::Hps, &cfg3).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let mut engine = Engine::new(
            EngineConfig::quick(MacKind::Bsc).with_queue_capacity(2).with_workers(1),
        )
        .unwrap();
        let net = toy_net("t", 64, 4, Precision::Int8);
        assert!(engine.submit(InferenceJob::new("a", Arc::clone(&net))).is_ok());
        assert!(engine.submit(InferenceJob::new("b", Arc::clone(&net))).is_ok());
        let err = engine.submit(InferenceJob::new("c", Arc::clone(&net))).unwrap_err();
        assert_eq!(err, RejectReason::QueueFull { capacity: 2 });
        let batch = engine.run_batch().unwrap();
        assert_eq!(batch.submitted(), 3);
        assert_eq!(batch.completed_count(), 2);
        assert_eq!(batch.rejected_count(), 1);
        assert_eq!(batch.outcomes()[2].label(), "rejected");
        // The queue bound was never exceeded.
        assert!(batch.peak_queue_depth <= 2);
    }

    #[test]
    fn infeasible_deadline_rejects_and_tight_deadline_sheds() {
        let mut engine =
            Engine::new(EngineConfig::quick(MacKind::Bsc).with_workers(1)).unwrap();
        let net = toy_net("t", 256, 32, Precision::Int8);
        let ideal = engine.estimate_cycles(&net);
        let exact = engine.schedule_cycles(&net).unwrap();
        assert!(exact > ideal, "quick array must not be perfectly utilized ({exact} vs {ideal})");

        // Deadline below even the ideal estimate: rejected at admission.
        let err = engine
            .submit(InferenceJob::new("hopeless", Arc::clone(&net)).with_deadline(ideal - 1))
            .unwrap_err();
        assert!(matches!(err, RejectReason::DeadlineInfeasible { .. }));

        // Deadline between ideal and exact: admitted optimistically, then
        // shed when the exact schedule lands.
        assert!(engine
            .submit(InferenceJob::new("optimistic", Arc::clone(&net)).with_deadline(ideal))
            .is_ok());
        // No deadline: always completes.
        assert!(engine.submit(InferenceJob::new("steady", Arc::clone(&net))).is_ok());

        let batch = engine.run_batch().unwrap();
        assert_eq!(batch.submitted(), 3);
        assert_eq!(batch.outcomes()[0].label(), "rejected");
        assert_eq!(batch.outcomes()[1].label(), "shed");
        assert_eq!(batch.outcomes()[2].label(), "completed");
        let done = batch.completed().next().unwrap();
        // The shed job never ran, so the survivor started at cycle 0.
        assert_eq!(done.queue_wait_cycles, 0);
        assert_eq!(done.completion_cycle, exact);
    }

    #[test]
    fn overload_limit_sheds_submissions() {
        let mut engine = Engine::new(
            EngineConfig::quick(MacKind::Bsc).with_workers(1).with_max_backlog_cycles(1),
        )
        .unwrap();
        let net = toy_net("t", 256, 16, Precision::Int4);
        let err = engine.submit(InferenceJob::new("big", net)).unwrap_err();
        assert!(matches!(err, RejectReason::Overloaded { .. }));
    }

    #[test]
    fn batch_results_are_worker_count_independent() {
        let nets: Vec<SharedNetwork> = (0..6)
            .map(|i| toy_net(&format!("n{i}"), 32 + 8 * i, 4 + i, Precision::ALL[i % 3]))
            .collect();
        let run = |workers: usize| {
            let mut engine = Engine::new(
                EngineConfig::quick(MacKind::Bsc).with_workers(workers),
            )
            .unwrap();
            let jobs = nets
                .iter()
                .enumerate()
                .map(|(i, n)| InferenceJob::new(format!("job{i}"), Arc::clone(n)))
                .collect();
            engine.run_jobs(jobs).unwrap()
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial, pooled);
        assert_eq!(serial.completed_count(), 6);
        // Queue waits are cumulative completions of the predecessors.
        let completed: Vec<_> = serial.completed().collect();
        for w in completed.windows(2) {
            assert_eq!(w[1].queue_wait_cycles, w[0].completion_cycle);
        }
    }

    #[test]
    fn tight_bandwidth_sheds_a_job_that_ample_bandwidth_completes() {
        use bsc_systolic::{DramBandwidth, MemConfig};

        let net = toy_net("t", 256, 32, Precision::Int8);
        let ample = Engine::new(EngineConfig::quick(MacKind::Bsc).with_workers(1)).unwrap();
        let compute_only = ample.schedule_cycles(&net).unwrap();

        // Ample bandwidth: the exact schedule equals the compute-only
        // schedule, so the deadline is met exactly.
        let mut engine = Engine::new(
            EngineConfig::new(AcceleratorConfig::quick(MacKind::Bsc).with_mem(MemConfig::infinite()))
                .with_workers(1),
        )
        .unwrap();
        engine
            .submit(InferenceJob::new("edge", Arc::clone(&net)).with_deadline(compute_only))
            .expect("feasible under infinite memory");
        let ample_batch = engine.run_batch().unwrap();
        assert_eq!(ample_batch.outcomes()[0].label(), "completed");
        assert_eq!(ample_batch.completed().next().unwrap().completion_cycle, compute_only);

        // One byte per cycle: the DMA traffic floor alone overruns the
        // same deadline, so the DMA-aware bound rejects at admission
        // instead of admitting a job that could only shed.
        let mut starved = Engine::new(
            EngineConfig::new(
                AcceleratorConfig::quick(MacKind::Bsc)
                    .with_mem(MemConfig::edge().with_bandwidth(DramBandwidth::BytesPerCycle(1))),
            )
            .with_workers(1),
        )
        .unwrap();
        let err = starved
            .submit(InferenceJob::new("doomed", Arc::clone(&net)).with_deadline(compute_only))
            .unwrap_err();
        assert!(matches!(err, RejectReason::DeadlineInfeasible { .. }), "{err}");

        // A deadline between the admission estimate and the exact
        // stall-inclusive schedule is still admitted optimistically and
        // shed at execution — the estimate stays a true lower bound.
        let est = starved.estimate_cycles(&net);
        let exact = starved.schedule_cycles(&net).unwrap();
        assert!(est < exact, "estimate {est} vs exact {exact}");
        starved
            .submit(InferenceJob::new("edge", Arc::clone(&net)).with_deadline(exact - 1))
            .expect("above the admission bound");
        let batch = starved.run_batch().unwrap();
        assert_eq!(batch.outcomes()[0].label(), "rejected");
        assert_eq!(batch.outcomes()[1].label(), "shed");
    }

    #[test]
    fn admission_bound_is_dma_aware_where_the_stall_free_bound_was_blind() {
        use bsc_systolic::{DramBandwidth, MemConfig};

        let net = toy_net("t", 256, 32, Precision::Int8);
        let mut engine = Engine::new(
            EngineConfig::new(
                AcceleratorConfig::quick(MacKind::Bsc)
                    .with_mem(MemConfig::edge().with_bandwidth(DramBandwidth::BytesPerCycle(1))),
            )
            .with_workers(1),
        )
        .unwrap();

        // The pre-fix admission bound: every layer at peak MACs/cycle,
        // blind to the memory hierarchy.
        let stall_free: u64 = net
            .layers
            .iter()
            .map(|l| {
                let peak = engine.config().accel.array.peak_macs_per_cycle(l.precision) as u64;
                l.macs().div_ceil(peak.max(1))
            })
            .sum();
        let est = engine.estimate_cycles(&net);
        assert!(
            stall_free < est,
            "at 1 B/cycle the DMA floor must dominate ({stall_free} vs {est})"
        );

        // Pick a deadline the old bound accepts but the DMA floor
        // disproves.  The old bound would admit this job and the exact
        // stall-inclusive schedule would shed it; the DMA-aware bound
        // rejects it at submission instead.
        let deadline = est - 1;
        assert!(deadline >= stall_free, "deadline sits between the two bounds");
        assert!(
            engine.schedule_cycles(&net).unwrap() > deadline,
            "an admitted job could only shed"
        );
        let err = engine
            .submit(InferenceJob::new("late", Arc::clone(&net)).with_deadline(deadline))
            .unwrap_err();
        match err {
            RejectReason::DeadlineInfeasible { projected_cycles, deadline_cycles } => {
                assert_eq!(projected_cycles, est);
                assert_eq!(deadline_cycles, deadline);
            }
            other => panic!("expected DeadlineInfeasible, got {other}"),
        }
    }

    #[test]
    fn queue_wait_histogram_records_every_planned_job() {
        let mut engine =
            Engine::new(EngineConfig::quick(MacKind::Bsc).with_workers(1)).unwrap();
        let net = toy_net("t", 64, 8, Precision::Int8);
        for i in 0..3 {
            engine.submit(InferenceJob::new(format!("j{i}"), Arc::clone(&net))).unwrap();
        }
        let batch = engine.run_batch().unwrap();
        let waits: Vec<u64> = batch.completed().map(|r| r.queue_wait_cycles).collect();
        let snap = engine.telemetry().metrics.snapshot();
        let hist = snap.histogram("engine.queue.wait_cycles").expect("histogram recorded");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, waits.iter().sum::<u64>());
        assert_eq!(hist.max, *waits.iter().max().unwrap());
        assert_eq!(hist.min, 0, "the first job starts immediately");
    }

    #[test]
    fn labeled_outcome_counters_break_down_by_reason() {
        let mut engine = Engine::new(
            EngineConfig::quick(MacKind::Bsc).with_queue_capacity(1).with_workers(1),
        )
        .unwrap();
        let net = toy_net("t", 256, 32, Precision::Int8);
        let ideal = engine.estimate_cycles(&net);
        // Admitted optimistically, shed by the exact schedule.
        let _ = engine.submit(InferenceJob::new("shed-me", Arc::clone(&net)).with_deadline(ideal));
        // Queue capacity 1: refused with backpressure.
        let _ = engine.submit(InferenceJob::new("bounced", Arc::clone(&net)));
        engine.run_batch().unwrap();
        let _ = engine.submit(InferenceJob::new("runs", Arc::clone(&net)));
        engine.run_batch().unwrap();

        let snap = engine.telemetry().metrics.snapshot();
        let at = |labels: &[(&str, &str)]| snap.labeled_counter_at("engine.jobs", labels);
        assert_eq!(at(&[("outcome", "shed"), ("reason", "deadline_missed")]), 1);
        assert_eq!(at(&[("outcome", "rejected"), ("reason", "queue_full")]), 1);
        assert_eq!(at(&[("outcome", "completed")]), 1);
        // Labeled totals agree with the flat counters.
        let total: u64 = snap.labeled_counter("engine.jobs").iter().map(|(_, v)| v).sum();
        assert_eq!(total, snap.counter("engine.jobs.submitted"));
    }

    #[test]
    fn slo_report_accounts_every_tenant_and_attaches_targets() {
        let mut engine =
            Engine::new(EngineConfig::quick(MacKind::Bsc).with_workers(1)).unwrap();
        let net = toy_net("t", 128, 16, Precision::Int8);
        let target = crate::SloTarget { latency_p99_cycles: 1, min_goodput: 1.0 };
        engine
            .submit(
                InferenceJob::new("a0", Arc::clone(&net)).with_tenant("acme").with_slo(target),
            )
            .unwrap();
        engine.submit(InferenceJob::new("a1", Arc::clone(&net)).with_tenant("acme")).unwrap();
        engine.submit(InferenceJob::new("z0", Arc::clone(&net)).with_tenant("zeta")).unwrap();
        let batch = engine.run_batch().unwrap();

        assert_eq!(
            batch.slo.tenants.iter().map(|t| t.tenant.as_str()).collect::<Vec<_>>(),
            vec!["acme", "zeta"],
            "tenants sorted by id"
        );
        let acme = batch.slo.tenant("acme").unwrap();
        assert_eq!((acme.submitted, acme.completed), (2, 2));
        assert_eq!(acme.latency.count, 2);
        // A 1-cycle p99 target is hopeless: declared, measured, missed.
        let att = acme.attainment.expect("target declared via with_slo");
        assert!(!att.latency_p99_ok && !att.attained);
        assert!(batch.slo.tenant("zeta").unwrap().attainment.is_none());
        // Both tenants saw identical jobs, so attribution is symmetric.
        assert_eq!(acme.energy_fj, 2 * batch.slo.tenant("zeta").unwrap().energy_fj);
    }

    #[test]
    fn tenant_energy_attributions_sum_exactly_to_the_batch_total() {
        let mut engine =
            Engine::new(EngineConfig::quick(MacKind::Bsc).with_workers(2)).unwrap();
        for i in 0..9 {
            let net = toy_net(&format!("n{i}"), 32 + 16 * i, 4 + i, Precision::ALL[i % 3]);
            engine
                .submit(
                    InferenceJob::new(format!("job{i}"), net)
                        .with_tenant(format!("tenant-{}", i % 3)),
                )
                .unwrap();
        }
        let batch = engine.run_batch().unwrap();
        assert_eq!(batch.completed_count(), 9);

        // The ground truth: quantize each layer's energy independently
        // and sum — the same integers the accountant folds.
        let expected: u64 = batch
            .completed()
            .flat_map(|r| r.report.layers())
            .map(|l| crate::slo::quantize_energy_fj(l.energy_fj))
            .sum();
        assert_eq!(batch.slo.total_energy_fj(), expected, "per-tenant sums == batch total");
        // And the per-precision split of each tenant sums to its total.
        for t in &batch.slo.tenants {
            let split: u64 = t.energy_by_precision.iter().map(|(_, fj)| fj).sum();
            assert_eq!(split, t.energy_fj, "precision split of {} is exact", t.tenant);
        }
        // The quantized batch total tracks the float total to <1 fJ per layer.
        let float_total = batch.total_energy_fj();
        assert!((float_total - expected as f64).abs() < 9.0 * 1.0);
    }

    #[test]
    fn engine_counters_track_outcomes() {
        let mut engine = Engine::new(
            EngineConfig::quick(MacKind::Bsc).with_queue_capacity(1).with_workers(1),
        )
        .unwrap();
        let net = toy_net("t", 64, 8, Precision::Int2);
        let _ = engine.submit(InferenceJob::new("a", Arc::clone(&net)));
        let _ = engine.submit(InferenceJob::new("b", Arc::clone(&net)));
        engine.run_batch().unwrap();
        let snap = engine.telemetry().metrics.snapshot();
        assert_eq!(snap.counter("engine.jobs.submitted"), 2);
        assert_eq!(snap.counter("engine.jobs.admitted"), 1);
        assert_eq!(snap.counter("engine.jobs.rejected"), 1);
        assert_eq!(snap.counter("engine.jobs.completed"), 1);
        assert!(snap.gauge("engine.queue.peak_depth") <= 1);
    }
}
