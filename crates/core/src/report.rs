//! Per-layer and whole-network energy-efficiency reports.

use std::fmt;

use bsc_mac::{MacKind, Precision};
use bsc_systolic::Roofline;

/// The scheduled execution of one layer on the array.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Precision the layer runs at.
    pub precision: Precision,
    /// Useful MACs.
    pub macs: u64,
    /// Compute clock cycles (the array's busy schedule, memory ignored).
    pub cycles: u64,
    /// End-to-end cycles through the memory hierarchy, including DMA
    /// stalls and the final drain.  Equals `cycles` when the configured
    /// hierarchy is infinite.
    pub total_cycles: u64,
    /// Cycles the array waited on the DMA engine (fill + mid-layer
    /// stalls + drain).
    pub stall_cycles: u64,
    /// Which roofline wall limits the layer under the configured memory.
    pub roofline: Roofline,
    /// Useful MACs over the stall-inclusive peak (`total_cycles ×` peak
    /// MACs/cycle) — the *achieved* fraction of the Fig. 5 throughput.
    pub peak_fraction: f64,
    /// Array utilization (useful MACs over compute-cycle peak).
    pub utilization: f64,
    /// Energy in fJ.
    pub energy_fj: f64,
    /// Layer-level energy efficiency in TOPS/W.
    pub tops_per_w: f64,
}

/// The execution of a whole network — one bar of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    network: String,
    kind: MacKind,
    period_ps: f64,
    layers: Vec<LayerReport>,
}

impl NetworkReport {
    pub(crate) fn new(
        network: String,
        kind: MacKind,
        period_ps: f64,
        layers: Vec<LayerReport>,
    ) -> Self {
        NetworkReport { network, kind, period_ps, layers }
    }

    /// Network name.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Vector MAC architecture of the run.
    pub fn kind(&self) -> MacKind {
        self.kind
    }

    /// Per-layer rows.
    pub fn layers(&self) -> &[LayerReport] {
        &self.layers
    }

    /// Total useful MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total compute cycles (memory hierarchy ignored).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total end-to-end cycles including DMA stalls.  Equals
    /// [`NetworkReport::total_cycles`] under an infinite hierarchy.
    pub fn total_cycles_with_stalls(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Total cycles the array waited on DMA.
    pub fn total_stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.stall_cycles).sum()
    }

    /// Total energy in fJ.
    pub fn total_energy_fj(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_fj).sum()
    }

    /// Inference latency in ms at the configured clock, including any
    /// memory stalls the configured hierarchy induces.
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles_with_stalls() as f64 * self.period_ps * 1e-9
    }

    /// The network-average energy efficiency in TOPS/W — the quantity
    /// Fig. 9 reports per benchmark (total ops over total energy, 2 ops
    /// per MAC).
    pub fn avg_tops_per_w(&self) -> f64 {
        let e = self.total_energy_fj();
        if e > 0.0 {
            2.0e3 * self.total_macs() as f64 / e
        } else {
            0.0
        }
    }

    /// Average array utilization weighted by cycles.
    pub fn avg_utilization(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / cycles as f64
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} @ {:.0} MHz: {:.2} TOPS/W, {:.2} ms, utilization {:.1}%",
            self.network,
            self.kind,
            1.0e6 / self.period_ps,
            self.avg_tops_per_w(),
            self.latency_ms(),
            100.0 * self.avg_utilization(),
        )?;
        for l in &self.layers {
            write!(
                f,
                "  {:<22} {:>5} {:>14} MACs {:>12} cyc  util {:>5.1}%  {:>8.2} TOPS/W",
                l.name,
                l.precision.to_string(),
                l.macs,
                l.cycles,
                100.0 * l.utilization,
                l.tops_per_w,
            )?;
            if l.stall_cycles > 0 {
                write!(f, "  +{} stall ({})", l.stall_cycles, l.roofline)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Renders a side-by-side comparison of the same network on several
/// designs — the textual form of one Fig. 9 group.
///
/// # Panics
///
/// Panics if the reports describe different networks.
pub fn render_comparison(reports: &[NetworkReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(first) = reports.first() else {
        return out;
    };
    for r in reports {
        assert_eq!(r.network(), first.network(), "reports must share a network");
    }
    let _ = writeln!(out, "{}:", first.network());
    let _ = writeln!(
        out,
        "  {:<6} {:>10} {:>12} {:>10} {:>8}",
        "design", "TOPS/W", "latency ms", "util %", "vs BSC"
    );
    let bsc = reports
        .iter()
        .find(|r| r.kind() == MacKind::Bsc)
        .map(NetworkReport::avg_tops_per_w);
    for r in reports {
        let ratio = bsc.map_or(String::from("-"), |b| format!("{:.2}x", b / r.avg_tops_per_w()));
        let _ = writeln!(
            out,
            "  {:<6} {:>10.2} {:>12.3} {:>10.1} {:>8}",
            r.kind().to_string(),
            r.avg_tops_per_w(),
            r.latency_ms(),
            100.0 * r.avg_utilization(),
            ratio
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> NetworkReport {
        NetworkReport::new(
            "toy".into(),
            MacKind::Bsc,
            2000.0,
            vec![
                LayerReport {
                    name: "a".into(),
                    precision: Precision::Int4,
                    macs: 1000,
                    cycles: 10,
                    total_cycles: 12,
                    stall_cycles: 2,
                    roofline: Roofline::ComputeBound,
                    peak_fraction: 0.7,
                    utilization: 0.8,
                    energy_fj: 500.0,
                    tops_per_w: 4.0,
                },
                LayerReport {
                    name: "b".into(),
                    precision: Precision::Int8,
                    macs: 3000,
                    cycles: 30,
                    total_cycles: 30,
                    stall_cycles: 0,
                    roofline: Roofline::ComputeBound,
                    peak_fraction: 0.4,
                    utilization: 0.4,
                    energy_fj: 1500.0,
                    tops_per_w: 4.0,
                },
            ],
        )
    }

    #[test]
    fn totals_aggregate_layers() {
        let r = toy_report();
        assert_eq!(r.total_macs(), 4000);
        assert_eq!(r.total_cycles(), 40);
        assert_eq!(r.total_cycles_with_stalls(), 42);
        assert_eq!(r.total_stall_cycles(), 2);
        // Latency prices the stall-inclusive cycle count.
        assert!((r.latency_ms() - 42.0 * 2000.0 * 1e-9).abs() < 1e-15);
        assert!((r.total_energy_fj() - 2000.0).abs() < 1e-12);
        // 2e3 * 4000 / 2000 = 4000 TOPS/W (toy numbers).
        assert!((r.avg_tops_per_w() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn avg_utilization_is_cycle_weighted() {
        let r = toy_report();
        let expect = (0.8 * 10.0 + 0.4 * 30.0) / 40.0;
        assert!((r.avg_utilization() - expect).abs() < 1e-12);
    }

    #[test]
    fn comparison_render_ratios_against_bsc() {
        let mk = |kind: MacKind, eff: f64| {
            NetworkReport::new(
                "net".into(),
                kind,
                2000.0,
                vec![LayerReport {
                    name: "l".into(),
                    precision: Precision::Int4,
                    macs: 1000,
                    cycles: 10,
                    total_cycles: 10,
                    stall_cycles: 0,
                    roofline: Roofline::ComputeBound,
                    peak_fraction: 0.5,
                    utilization: 0.5,
                    energy_fj: 2.0e3 * 1000.0 / eff,
                    tops_per_w: eff,
                }],
            )
        };
        let s = render_comparison(&[mk(MacKind::Bsc, 20.0), mk(MacKind::Lpc, 10.0)]);
        assert!(s.contains("BSC"));
        assert!(s.contains("2.00x"), "{s}");
    }

    #[test]
    fn display_contains_layer_rows() {
        let s = toy_report().to_string();
        assert!(s.contains("toy on BSC"));
        assert!(s.contains("4-bit"));
    }
}
