//! Bounded FIFO admission queue with depth accounting.
//!
//! The batch engine admits [`InferenceJob`](crate::engine::InferenceJob)s
//! into one of these instead of an unbounded `Vec`: when the queue is
//! full the submission is *rejected with a reason* (backpressure), never
//! silently buffered.  The queue tracks its high-water mark so tests and
//! the telemetry export can prove the configured bound was never
//! exceeded.

use std::collections::VecDeque;

/// Error returned when a push would exceed the configured capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured bound the push would have exceeded.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// A bounded FIFO with a high-water mark.
///
/// Not internally synchronized: the engine owns it behind `&mut self`
/// (admission is inherently ordered — concurrent submitters would make
/// reject decisions racy and worker-count dependent).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    peak_depth: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity — a queue that can never admit anything
    /// is a configuration error, not a useful degenerate case.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue { items: VecDeque::with_capacity(capacity), capacity, peak_depth: 0 }
    }

    /// Appends an item, or refuses if the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] (and gives the item back untouched via the
    /// tuple) when `len() == capacity()`.
    pub fn push(&mut self, item: T) -> Result<(), (T, QueueFull)> {
        if self.items.len() >= self.capacity {
            return Err((item, QueueFull { capacity: self.capacity }));
        }
        self.items.push_back(item);
        self.peak_depth = self.peak_depth.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Drains every queued item in FIFO order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..)
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the queue has ever been — by construction never above
    /// [`capacity`](Self::capacity).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo() {
        let mut q = BoundedQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects_and_returns_the_item() {
        let mut q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        let (item, err) = q.push("c").unwrap_err();
        assert_eq!(item, "c");
        assert_eq!(err.capacity, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        q.pop();
        q.pop();
        q.push(4).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_depth(), 3);
        assert!(q.peak_depth() <= q.capacity());
    }

    #[test]
    fn drain_empties_in_order() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        let out: Vec<_> = q.drain().collect();
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
