//! # BSC precision-scalable vector systolic accelerator
//!
//! End-to-end facade for the reproduction of *"A Precision-Scalable
//! Energy-Efficient Bit-Split-and-Combination Vector Systolic Accelerator
//! for NAS-Optimized DNNs on Edge"* (DATE 2022).
//!
//! The crate ties the layered reproduction together:
//!
//! * [`bsc_netlist`] (re-exported as [`netlist`]) — gate-level IR +
//!   simulator (the RTL/VCS substitute);
//! * [`bsc_synth`] ([`synth`]) — 28nm library model, STA, effort model,
//!   activity power (the DC/PTPX substitute);
//! * [`bsc_mac`] ([`mac`]) — the BSC vector MAC and the LPC/HPS baselines,
//!   functional + structural;
//! * [`bsc_systolic`] ([`systolic`]) — the 32-PE weight-stationary vector
//!   systolic array, conv mapping and array energy model;
//! * [`bsc_nn`] ([`nn`]) — multi-precision CNN benchmarks and the NAS
//!   precision search.
//!
//! [`Accelerator`] is the one-stop API: build it for an architecture, run
//! matrices or whole networks, and read energy-efficiency reports.
//! [`Engine`] layers multi-tenant serving on top: a shared
//! [`CharacterizationCache`], a bounded admission queue with
//! deadline-aware rejection and load shedding, and deterministic batched
//! execution over a worker pool (see `docs/serving.md`).
//!
//! # Example
//!
//! ```no_run
//! use bsc_accel::{Accelerator, AcceleratorConfig};
//! use bsc_mac::MacKind;
//!
//! # fn main() -> Result<(), bsc_accel::AccelError> {
//! let accel = Accelerator::new(AcceleratorConfig::paper(MacKind::Bsc))?;
//! let report = accel.run_network(&bsc_nn::models::lenet5())?;
//! println!("LeNet-5 on BSC: {:.2} TOPS/W", report.avg_tops_per_w());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
pub mod cluster;
pub mod compiler;
pub mod des;
pub mod engine;
mod error;
pub mod queue;
mod report;
pub mod slo;

pub use accelerator::{Accelerator, AcceleratorConfig};
pub use cluster::{
    depth_stride_for_horizon, run_online, run_online_profiled, DepthSample, DispatchPolicy,
    JobTemplate, OnlineConfig, OnlineReport, ShardDepth, ShardFunnel, ShardReport, ShardSpec,
    TrafficSource, EVENT_LOG_CAP,
};
pub use des::{ArrivalGen, ArrivalProcess, DiurnalSegment, EventQueue};
pub use engine::{
    BatchReport, CharacterizationCache, Engine, EngineConfig, InferenceJob, JobOutcome,
    JobReport, PrecisionPolicy, RejectReason, ShedReason,
};
pub use error::AccelError;
pub use queue::{BoundedQueue, QueueFull};
pub use report::{render_comparison, LayerReport, NetworkReport};
pub use slo::{
    SloAccountant, SloAttainment, SloReport, SloTarget, TenantId, TenantSlo, TenantWindow,
};

pub use bsc_mac as mac;
pub use bsc_netlist as netlist;
pub use bsc_nn as nn;
pub use bsc_synth as synth;
pub use bsc_systolic as systolic;

/// Converts an [`bsc_nn::LayerKind`] into the systolic mapping shape.
pub fn layer_to_conv_shape(kind: &bsc_nn::LayerKind) -> bsc_systolic::mapping::ConvShape {
    match *kind {
        bsc_nn::LayerKind::Conv { in_c, out_c, kernel, stride, padding, in_w, in_h } => {
            bsc_systolic::mapping::ConvShape {
                in_channels: in_c,
                out_channels: out_c,
                in_w,
                in_h,
                kernel_w: kernel,
                kernel_h: kernel,
                stride,
                padding,
            }
        }
        bsc_nn::LayerKind::Fc { fan_in, fan_out } => {
            bsc_systolic::mapping::ConvShape::fully_connected(fan_in, fan_out)
        }
    }
}
