use std::error::Error;
use std::fmt;

/// Errors from the accelerator facade.
#[derive(Debug)]
#[non_exhaustive]
pub enum AccelError {
    /// PPA characterization or analysis failure.
    Ppa(bsc_mac::ppa::PpaError),
    /// Systolic simulation or mapping failure.
    Systolic(bsc_systolic::SystolicError),
    /// Vector MAC operand failure.
    Mac(bsc_mac::MacError),
    /// Invalid engine / cluster configuration (e.g. an online cluster
    /// with no shards).
    Config(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Ppa(e) => write!(f, "characterization error: {e}"),
            AccelError::Systolic(e) => write!(f, "systolic error: {e}"),
            AccelError::Mac(e) => write!(f, "mac error: {e}"),
            AccelError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Ppa(e) => Some(e),
            AccelError::Systolic(e) => Some(e),
            AccelError::Mac(e) => Some(e),
            AccelError::Config(_) => None,
        }
    }
}

impl From<bsc_mac::ppa::PpaError> for AccelError {
    fn from(e: bsc_mac::ppa::PpaError) -> Self {
        AccelError::Ppa(e)
    }
}

impl From<bsc_systolic::SystolicError> for AccelError {
    fn from(e: bsc_systolic::SystolicError) -> Self {
        AccelError::Systolic(e)
    }
}

impl From<bsc_mac::MacError> for AccelError {
    fn from(e: bsc_mac::MacError) -> Self {
        AccelError::Mac(e)
    }
}
