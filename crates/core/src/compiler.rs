//! The convolution tile compiler: lowers one layer into an executable
//! sequence of stationary-weight passes (the Fig. 6 mapping made
//! operational) and executes it on the cycle-accurate array.
//!
//! Each [`TileOp::Pass`] pins one (kernel-offset, channel-tile, PE-tile)
//! triple of weights into the array, streams every output pixel's feature
//! vector through it, and accumulates the partial sums into the output
//! buffer.  Executing the program reproduces [`bsc_nn::ops::conv2d`]
//! exactly, and its measured cycle count matches
//! [`bsc_systolic::mapping::schedule_conv`]'s analytic formula cycle for
//! cycle — the compiler is the proof that the Fig. 9 energy schedules
//! describe a real execution.

use bsc_mac::Precision;
use bsc_nn::ops::ConvWeights;
use bsc_nn::Tensor;
use bsc_systolic::mapping::{schedule_conv, ConvShape};
use bsc_systolic::{ArrayConfig, Matrix, SystolicArray};

use crate::AccelError;

/// One operation of a compiled tile program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileOp {
    /// Configures the array's precision mode (first instruction).
    SetMode(Precision),
    /// One stationary-weight pass.
    Pass {
        /// Kernel offset `(ky, kx)` this pass covers.
        kernel: (usize, usize),
        /// Channel-tile index (`I_C` split to the mode's dot length).
        channel_tile: usize,
        /// PE-tile index (`K_N` split across the PEs).
        pe_tile: usize,
    },
}

/// A compiled layer: the op sequence plus the shapes it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct TileProgram {
    /// Instruction sequence.
    pub ops: Vec<TileOp>,
    /// The layer shape this program computes.
    pub shape: ConvShape,
    /// Precision mode.
    pub precision: Precision,
    /// Network layer index stamped into emitted trace events.
    pub layer: u32,
    /// Spatial stride (duplicated from the shape for the executor).
    stride: usize,
    padding: usize,
}

impl TileProgram {
    /// Tags the program with a network layer index; [`execute`] stamps it
    /// into every `TileStart` trace event so multi-layer traces stay
    /// attributable.
    #[must_use]
    pub fn with_layer(mut self, layer: u32) -> Self {
        self.layer = layer;
        self
    }
}

/// Execution statistics of a tile program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total clock cycles (sum over passes, including pipeline fill).
    pub cycles: u64,
    /// Stationary passes executed.
    pub passes: u64,
    /// Useful MACs performed (gated lanes excluded).
    pub useful_macs: u64,
}

/// Compiles one convolution layer into a tile program for the given array.
///
/// # Errors
///
/// Returns a mapping error for degenerate shapes.
pub fn compile_conv(
    config: &ArrayConfig,
    p: Precision,
    shape: &ConvShape,
) -> Result<TileProgram, AccelError> {
    // Validate through the scheduler (same error surface).
    let _ = schedule_conv(config, p, shape)?;
    let split = config.dot_length(p);
    let channel_tiles = shape.in_channels.div_ceil(split);
    let pe_tiles = shape.out_channels.div_ceil(config.pes);
    let mut ops = vec![TileOp::SetMode(p)];
    // Loop order per Fig. 6: W before H inside a pass (the streaming order),
    // kernel offsets innermost across passes, then channel tiles, then PE
    // tiles.
    for pe_tile in 0..pe_tiles {
        for channel_tile in 0..channel_tiles {
            for ky in 0..shape.kernel_h {
                for kx in 0..shape.kernel_w {
                    ops.push(TileOp::Pass { kernel: (ky, kx), channel_tile, pe_tile });
                }
            }
        }
    }
    Ok(TileProgram {
        ops,
        shape: *shape,
        precision: p,
        layer: 0,
        stride: shape.stride,
        padding: shape.padding,
    })
}

/// Executes a compiled program on the cycle-accurate array.
///
/// `input` is the `(in_c, in_h, in_w)` feature map, `weights` the layer's
/// kernels; the result is the exact `(out_c, out_h, out_w)` output map.
///
/// # Errors
///
/// Propagates shape and operand-range errors from the array.
pub fn execute(
    program: &TileProgram,
    array: &SystolicArray,
    input: &Tensor,
    weights: &ConvWeights,
) -> Result<(Tensor, ExecStats), AccelError> {
    let shape = &program.shape;
    let p = program.precision;
    let config = array.config();
    let split = config.dot_length(p);
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let mut psum = Tensor::zeros(shape.out_channels, out_h, out_w);
    let mut stats = ExecStats::default();
    let _exec_span = array.telemetry().map(|tel| {
        let g = tel.spans.begin("compiler.execute");
        g.annotate("layer", program.layer);
        g.annotate("precision", p);
        g.annotate("ops", program.ops.len());
        g
    });

    for op in &program.ops {
        let &TileOp::Pass { kernel: (ky, kx), channel_tile, pe_tile } = op else {
            if let (&TileOp::SetMode(mode), Some(tel)) = (op, array.telemetry()) {
                tel.trace.push(bsc_telemetry::TraceEvent::ModeSet { bits: mode.bits() });
            }
            continue;
        };
        let c_lo = channel_tile * split;
        let c_hi = (c_lo + split).min(shape.in_channels);
        let n_lo = pe_tile * config.pes;
        let n_hi = (n_lo + config.pes).min(shape.out_channels);

        // Feature matrix: one row per output pixel (W before H), one
        // column per channel lane (zero-padded to the full vector).
        let features = Matrix::from_fn(out_h * out_w, split, |m, lane| {
            let (oy, ox) = (m / out_w, m % out_w);
            let c = c_lo + lane;
            if c >= c_hi {
                return 0;
            }
            let y = (oy * program.stride + ky) as isize - program.padding as isize;
            let x = (ox * program.stride + kx) as isize - program.padding as isize;
            input.get_padded(c, y, x)
        });
        // Weight matrix: one row per PE / output channel in the tile.
        let wmat = Matrix::from_fn(n_hi - n_lo, split, |r, lane| {
            let c = c_lo + lane;
            if c >= c_hi {
                0
            } else {
                weights.get(n_lo + r, c, ky, kx)
            }
        });
        if let Some(tel) = array.telemetry() {
            tel.trace.push(bsc_telemetry::TraceEvent::TileStart {
                layer: program.layer,
                pass: stats.passes as u32,
                rows: (out_h * out_w) as u32,
                cols: (n_hi - n_lo) as u32,
                inner: (c_hi - c_lo) as u32,
            });
            tel.metrics.counter("accel.passes").inc();
            tel.metrics
                .counter("accel.useful_macs")
                .add((out_h * out_w) as u64 * (n_hi - n_lo) as u64 * (c_hi - c_lo) as u64);
        }
        let run = array.matmul(p, &features, &wmat)?;
        for m in 0..out_h * out_w {
            let (oy, ox) = (m / out_w, m % out_w);
            for r in 0..(n_hi - n_lo) {
                let o = n_lo + r;
                psum.set(o, oy, ox, psum.get(o, oy, ox) + run.output.get(m, r));
            }
        }
        stats.cycles += run.stats.cycles;
        stats.passes += 1;
        stats.useful_macs +=
            (out_h * out_w) as u64 * (n_hi - n_lo) as u64 * (c_hi - c_lo) as u64;
    }
    Ok((psum, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_mac::MacKind;
    use bsc_netlist::rng::Rng64;

    fn setup(
        kind: MacKind,
        p: Precision,
        shape: ConvShape,
        seed: u64,
    ) -> (SystolicArray, Tensor, ConvWeights) {
        let mut rng = Rng64::seed_from_u64(seed);
        let array = SystolicArray::new(ArrayConfig { pes: 4, vector_length: 4, kind });
        let input = Tensor::random(
            shape.in_channels,
            shape.in_h,
            shape.in_w,
            p.value_range(),
            seed ^ 1,
        );
        let r = p.value_range();
        let weights = ConvWeights {
            out_c: shape.out_channels,
            in_c: shape.in_channels,
            kh: shape.kernel_h,
            kw: shape.kernel_w,
            data: (0..shape.weight_count() as usize)
                .map(|_| rng.gen_range(r.clone()))
                .collect(),
        };
        (array, input, weights)
    }

    #[test]
    fn compiled_program_reproduces_golden_conv() {
        for kind in MacKind::ALL {
            for p in Precision::ALL {
                let shape = ConvShape::conv(5, 6, 6, 6, 3, 1, 1);
                let (array, input, weights) = setup(kind, p, shape, 42);
                let program = compile_conv(&array.config(), p, &shape).unwrap();
                let (out, _) = execute(&program, &array, &input, &weights).unwrap();
                let golden = bsc_nn::ops::conv2d(&input, &weights, 1, 1).unwrap();
                assert_eq!(out, golden, "{kind} {p}");
            }
        }
    }

    #[test]
    fn measured_cycles_match_the_analytic_schedule_exactly() {
        for kind in MacKind::ALL {
            for p in Precision::ALL {
                // Shapes exercising partial channel tiles and PE tiles.
                for shape in [
                    ConvShape::conv(5, 6, 6, 6, 3, 1, 1),
                    ConvShape::conv(3, 9, 5, 5, 1, 1, 0),
                    ConvShape::conv(8, 4, 8, 8, 3, 2, 1),
                    ConvShape::fully_connected(30, 7),
                ] {
                    let (array, input, weights) = setup(kind, p, shape, 77);
                    let program = compile_conv(&array.config(), p, &shape).unwrap();
                    let (_, stats) = execute(&program, &array, &input, &weights).unwrap();
                    let schedule = schedule_conv(&array.config(), p, &shape).unwrap();
                    assert_eq!(stats.cycles, schedule.cycles, "{kind} {p} {shape:?}");
                    assert_eq!(stats.passes, schedule.passes, "{kind} {p} {shape:?}");
                    assert_eq!(
                        stats.useful_macs, schedule.useful_macs,
                        "{kind} {p} {shape:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn execute_emits_one_tile_start_per_pass() {
        use bsc_telemetry::{Telemetry, TraceEvent};
        let shape = ConvShape::conv(5, 6, 4, 4, 3, 1, 1);
        let p = Precision::Int8;
        let (array, input, weights) = setup(MacKind::Bsc, p, shape, 9);
        let tel = Telemetry::new(4096);
        let mut array = array;
        array.set_telemetry(tel.clone());
        let program = compile_conv(&array.config(), p, &shape).unwrap().with_layer(3);
        let (_, stats) = execute(&program, &array, &input, &weights).unwrap();

        let trace = tel.trace.snapshot();
        let starts: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TileStart { .. }))
            .collect();
        assert_eq!(starts.len() as u64, stats.passes);
        // Every event carries the stamped layer index and the streaming
        // row count of this shape (4x4 output pixels).
        for e in &starts {
            let TraceEvent::TileStart { layer, rows, .. } = e else { unreachable!() };
            assert_eq!(*layer, 3);
            assert_eq!(*rows, 16);
        }
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("accel.passes"), stats.passes);
        assert_eq!(snap.counter("accel.useful_macs"), stats.useful_macs);
    }

    #[test]
    fn program_structure_is_mode_then_passes() {
        let config = ArrayConfig { pes: 4, vector_length: 4, kind: MacKind::Bsc };
        let shape = ConvShape::conv(5, 6, 4, 4, 3, 1, 1);
        let program = compile_conv(&config, Precision::Int8, &shape).unwrap();
        assert_eq!(program.ops[0], TileOp::SetMode(Precision::Int8));
        // 9 kernel offsets × ceil(5/4)=2 channel tiles × ceil(6/4)=2 PE
        // tiles (8-bit dot length of this 4-slot vector is 4).
        assert_eq!(program.ops.len() - 1, 9 * 2 * 2);
        assert!(program.ops[1..].iter().all(|op| matches!(op, TileOp::Pass { .. })));
    }
}
