//! The end-to-end accelerator API.

use std::sync::Arc;

use bsc_mac::ppa::{CharacterizeConfig, DesignCharacterization};
use bsc_mac::{MacKind, Precision};
use bsc_nn::Network;
use bsc_systolic::energy::ArrayEnergyModel;
use bsc_systolic::mapping::schedule_conv;
use bsc_systolic::mem::{schedule_conv_with_memory, MemConfig};
use bsc_systolic::{ArrayConfig, ArrayGeometry, Matrix, MatmulRun, SystolicArray};
use bsc_telemetry::Telemetry;

use crate::report::{LayerReport, NetworkReport};
use crate::{layer_to_conv_shape, AccelError};

/// Configuration of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Vector MAC architecture (BSC, LPC or HPS).
    pub kind: MacKind,
    /// PE-array geometry.
    pub array: ArrayConfig,
    /// Operating clock period in ps.
    pub period_ps: f64,
    /// Gate-level characterization settings.
    pub characterize: CharacterizeConfig,
    /// Memory hierarchy feeding the array.  Defaults to
    /// [`MemConfig::infinite`], which reproduces the compute-only
    /// schedules bit-exactly; set a finite hierarchy (e.g.
    /// [`MemConfig::edge`]) to price DMA stalls into every report.
    pub mem: MemConfig,
}

impl AcceleratorConfig {
    /// The paper's configuration: 32 PEs × vector length 32 at 500 MHz
    /// (2 ns clock).
    pub fn paper(kind: MacKind) -> Self {
        AcceleratorConfig {
            kind,
            array: ArrayConfig::paper(kind),
            period_ps: 2000.0,
            characterize: CharacterizeConfig::default(),
            mem: MemConfig::infinite(),
        }
    }

    /// A reduced configuration for fast tests: 4 PEs × vector length 8,
    /// short characterization runs.  (Vector length 8 is the shortest at
    /// which the BSC design's shared-shifter amortization is visible; at
    /// 4 the Int8 efficiency ordering against HPS is a coin flip.)
    pub fn quick(kind: MacKind) -> Self {
        AcceleratorConfig {
            kind,
            array: ArrayConfig { pes: 4, vector_length: 8, kind },
            period_ps: 2000.0,
            characterize: CharacterizeConfig::quick(4),
            mem: MemConfig::infinite(),
        }
    }

    /// Same accelerator behind a different memory hierarchy.
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Same accelerator at a different PE-array geometry.  The
    /// characterization length follows the vector length automatically
    /// (as in [`Accelerator::new`]), so the gate-level netlist matches
    /// the datapath being modeled.
    pub fn with_geometry(mut self, geometry: ArrayGeometry) -> Self {
        self.array = ArrayConfig::with_geometry(self.kind, geometry);
        self.characterize.length = geometry.vector_length;
        self
    }
}

/// A configured accelerator: a characterized vector-MAC design inside a
/// weight-stationary systolic array at a fixed operating point.
///
/// Construction is expensive (it builds the gate-level netlist and runs
/// the activity testbench in all three precision modes); reuse one
/// instance across experiments.
#[derive(Debug)]
pub struct Accelerator {
    config: AcceleratorConfig,
    charac: Arc<DesignCharacterization>,
    array: SystolicArray,
}

impl Accelerator {
    /// Characterizes the configured design and prepares the array.
    ///
    /// Prefer [`Accelerator::new_cached`] when several accelerators (or
    /// several tests in one binary) share a design — this constructor
    /// always runs a fresh characterization.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn new(config: AcceleratorConfig) -> Result<Self, AccelError> {
        let mut charac_cfg = config.characterize.clone();
        charac_cfg.length = config.array.vector_length;
        let charac = DesignCharacterization::new(config.kind, &charac_cfg)?;
        Ok(Self::with_characterization(config, charac))
    }

    /// Like [`Accelerator::new`], but characterizations are looked up in
    /// (and inserted into) the given cache, so each distinct design is
    /// characterized at most once per cache.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures from a cache miss.
    pub fn new_cached(
        config: AcceleratorConfig,
        cache: &crate::engine::CharacterizationCache,
    ) -> Result<Self, AccelError> {
        let mut charac_cfg = config.characterize.clone();
        charac_cfg.length = config.array.vector_length;
        let charac = cache.get_or_characterize(config.kind, &charac_cfg)?;
        Ok(Self::with_shared_characterization(config, charac))
    }

    /// A quick-configuration accelerator backed by the process-wide
    /// [`CharacterizationCache::global`](crate::engine::CharacterizationCache::global)
    /// cache — the constructor every in-repo test uses, so one test
    /// binary characterizes each design at most once.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures from a cache miss.
    pub fn quick_cached(kind: MacKind) -> Result<Self, AccelError> {
        Self::new_cached(
            AcceleratorConfig::quick(kind),
            crate::engine::CharacterizationCache::global(),
        )
    }

    /// Builds an accelerator around an already-characterized design,
    /// avoiding a second gate-level simulation pass (the characterization's
    /// vector length must match `config.array.vector_length`).
    ///
    /// # Panics
    ///
    /// Panics if the characterization's architecture differs from
    /// `config.kind`.
    pub fn with_characterization(
        config: AcceleratorConfig,
        charac: DesignCharacterization,
    ) -> Self {
        Self::with_shared_characterization(config, Arc::new(charac))
    }

    /// [`Accelerator::with_characterization`] for a shared (cached)
    /// characterization: many accelerators — e.g. one per engine worker —
    /// reference one characterization without re-simulating or cloning.
    ///
    /// # Panics
    ///
    /// Panics if the characterization's architecture differs from
    /// `config.kind`.
    pub fn with_shared_characterization(
        config: AcceleratorConfig,
        charac: Arc<DesignCharacterization>,
    ) -> Self {
        assert_eq!(charac.kind(), config.kind, "characterization architecture mismatch");
        let array = SystolicArray::new(config.array);
        Accelerator { config, charac, array }
    }

    /// The configuration this accelerator was built with.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The underlying characterization (for custom PPA queries).
    pub fn characterization(&self) -> &DesignCharacterization {
        &self.charac
    }

    /// A shared handle to the characterization, for building further
    /// accelerators or engines on the same design without re-simulating.
    pub fn shared_characterization(&self) -> Arc<DesignCharacterization> {
        Arc::clone(&self.charac)
    }

    /// Attaches a fresh telemetry hub (metrics registry + trace ring of
    /// the given capacity) to the underlying array and returns a handle
    /// to it.  Every subsequent [`matmul`](Self::matmul),
    /// [`conv2d`](Self::conv2d) and [`run_network`](Self::run_network)
    /// call publishes counters and trace events into it.
    pub fn enable_telemetry(&mut self, trace_capacity: usize) -> Telemetry {
        let tel = Telemetry::new(trace_capacity);
        self.array.set_telemetry(tel.clone());
        tel
    }

    /// Attaches an existing telemetry hub (e.g. one shared across several
    /// accelerator instances) to the underlying array.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.array.set_telemetry(telemetry);
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.array.telemetry()
    }

    /// The array-level energy model for one precision mode at the
    /// configured operating point.
    ///
    /// # Errors
    ///
    /// Returns an error when the operating period is infeasible.
    pub fn energy_model(&self, p: Precision) -> Result<ArrayEnergyModel, AccelError> {
        let unit = self.charac.at_period_weight_stationary(p, self.config.period_ps)?;
        Ok(ArrayEnergyModel::new(unit, self.config.array))
    }

    /// Runs one exact matrix multiplication through the cycle-accurate
    /// array simulation (functional path).
    ///
    /// # Errors
    ///
    /// Propagates shape and operand-range errors.
    pub fn matmul(
        &self,
        p: Precision,
        features: &Matrix,
        weights: &Matrix,
    ) -> Result<MatmulRun, AccelError> {
        Ok(self.array.matmul(p, features, weights)?)
    }

    /// Runs one exact quantized convolution on the array: lowers it with
    /// im2col (the Fig. 6 mapping), executes the tiled systolic matmul,
    /// and folds the result back into a `(out_c, out_h, out_w)` tensor.
    ///
    /// The returned tensor is bit-exact against
    /// [`bsc_nn::ops::conv2d`]; operands must fit the mode `p`.
    ///
    /// # Errors
    ///
    /// Propagates shape and operand-range errors from the lowering and the
    /// array.
    pub fn conv2d(
        &self,
        p: Precision,
        input: &bsc_nn::Tensor,
        weights: &bsc_nn::ops::ConvWeights,
        stride: usize,
        padding: usize,
    ) -> Result<(bsc_nn::Tensor, bsc_systolic::DataflowStats), AccelError> {
        let (feat, wmat) = bsc_nn::ops::im2col(input, weights, stride, padding);
        let run = self.array.matmul_tiled(
            p,
            &Matrix::from_rows(&feat),
            &Matrix::from_rows(&wmat),
        )?;
        let out_h = (input.height() + 2 * padding - weights.kh) / stride + 1;
        let out_w = (input.width() + 2 * padding - weights.kw) / stride + 1;
        let out = bsc_nn::Tensor::from_fn(weights.out_c, out_h, out_w, |o, y, x| {
            run.output.get(y * out_w + x, o)
        });
        Ok((out, run.stats))
    }

    /// Extension beyond the paper: the per-layer energy breakdown
    /// *including* the SRAM hierarchy (weight buffer, feature buffer and
    /// partial-sum read-modify-write traffic), which the paper's PPA scope
    /// excludes.  Returns `(layer name, breakdown)` pairs.
    ///
    /// With a finite memory hierarchy configured, buffer fills and DRAM
    /// transfers are priced from the tiler's **measured** DMA counters;
    /// under the default infinite hierarchy the pre-hierarchy analytic
    /// estimate is the (pinned) fallback.
    ///
    /// # Errors
    ///
    /// Propagates mapping and characterization errors.
    pub fn memory_report(
        &self,
        net: &Network,
        sram: &bsc_systolic::energy::SramModel,
    ) -> Result<Vec<(String, bsc_systolic::energy::MemoryEnergyBreakdown)>, AccelError> {
        let mut rows = Vec::with_capacity(net.layers.len());
        for layer in &net.layers {
            let shape = layer_to_conv_shape(&layer.kind);
            let model = self.energy_model(layer.precision)?;
            let breakdown = if self.config.mem.is_infinite_bandwidth() {
                let schedule = schedule_conv(&self.config.array, layer.precision, &shape)?;
                model.schedule_energy_with_memory(&schedule, sram)
            } else {
                let aware = schedule_conv_with_memory(
                    &self.config.array,
                    &self.config.mem,
                    layer.precision,
                    &shape,
                )?;
                model.schedule_energy_with_dma(&aware, sram)
            };
            rows.push((layer.name.clone(), breakdown));
        }
        Ok(rows)
    }

    /// Schedules and energy-models every layer of a network (analytic
    /// path), producing the per-layer and whole-network numbers behind
    /// Fig. 9.
    ///
    /// # Errors
    ///
    /// Propagates mapping and characterization errors.
    pub fn run_network(&self, net: &Network) -> Result<NetworkReport, AccelError> {
        let _timer = self
            .telemetry()
            .map(|tel| tel.metrics.timer("accel.run_network_ns"));
        let _net_span = self.telemetry().map(|tel| {
            let g = tel.spans.begin("accel.run_network");
            g.annotate("network", &net.name);
            g.annotate("layers", net.layers.len());
            g
        });
        let mut layers = Vec::with_capacity(net.layers.len());
        for (i, layer) in net.layers.iter().enumerate() {
            let _layer_span = self.telemetry().map(|tel| {
                let g = tel.spans.begin(&format!("layer.{}", layer.name));
                g.annotate("index", i);
                g.annotate("precision", layer.precision);
                g
            });
            let shape = layer_to_conv_shape(&layer.kind);
            let aware = schedule_conv_with_memory(
                &self.config.array,
                &self.config.mem,
                layer.precision,
                &shape,
            )?;
            let schedule = aware.compute;
            let model = self.energy_model(layer.precision)?;
            let energy_fj = model.schedule_energy_fj(&schedule);
            if let Some(tel) = self.telemetry() {
                tel.trace.push(bsc_telemetry::TraceEvent::TileStart {
                    layer: i as u32,
                    pass: 0,
                    rows: (shape.out_h() * shape.out_w()) as u32,
                    cols: shape.out_channels as u32,
                    inner: shape.in_channels as u32,
                });
                // Under a finite hierarchy, the layer's DMA activity shows
                // up as load/store slices on the timeline's DMA track: the
                // channel's load time anchored at the layer start, its
                // writeback time ending at the layer's last cycle.
                if !self.config.mem.is_infinite_bandwidth() {
                    tel.trace.push(bsc_telemetry::TraceEvent::Dma {
                        cycle: 0,
                        cycles: aware.dma_load_cycles.min(u32::MAX as u64) as u32,
                        bytes: aware.dma_load_bytes.min(u32::MAX as u64) as u32,
                        store: false,
                    });
                    if aware.dma_store_bytes > 0 {
                        tel.trace.push(bsc_telemetry::TraceEvent::Dma {
                            cycle: aware.total_cycles.saturating_sub(aware.dma_store_cycles),
                            cycles: aware.dma_store_cycles.min(u32::MAX as u64) as u32,
                            bytes: aware.dma_store_bytes.min(u32::MAX as u64) as u32,
                            store: true,
                        });
                    }
                }
                let prefix = format!("accel.layer.{}", layer.name);
                tel.metrics.counter(&format!("{prefix}.cycles")).add(schedule.cycles);
                tel.metrics.counter(&format!("{prefix}.macs")).add(schedule.useful_macs);
                tel.metrics.counter(&format!("{prefix}.passes")).add(schedule.passes);
                tel.metrics.counter("mem.dma.loads").add(aware.dma_loads);
                tel.metrics.counter("mem.dma.bytes").add(aware.dma_bytes());
                tel.metrics.counter("mem.dma.stall_cycles").add(aware.stall_cycles);
            }
            layers.push(LayerReport {
                name: layer.name.clone(),
                precision: layer.precision,
                macs: schedule.useful_macs,
                cycles: schedule.cycles,
                total_cycles: aware.total_cycles,
                stall_cycles: aware.stall_cycles + aware.drain_cycles,
                roofline: aware.roofline,
                peak_fraction: aware.peak_fraction,
                utilization: schedule.utilization,
                energy_fj,
                tops_per_w: model.schedule_tops_per_w(&schedule),
            });
        }
        Ok(NetworkReport::new(
            net.name.clone(),
            self.config.kind,
            self.config.period_ps,
            layers,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_geometry_threads_rows_and_vector_length() {
        let cfg = AcceleratorConfig::paper(MacKind::Bsc)
            .with_geometry(ArrayGeometry::new(16, 8));
        assert_eq!(cfg.array.pes, 16);
        assert_eq!(cfg.array.vector_length, 8);
        assert_eq!(cfg.characterize.length, 8);
        // The default geometry is still the paper's.
        let paper = AcceleratorConfig::paper(MacKind::Bsc);
        assert_eq!(paper.array.geometry(), ArrayGeometry::paper());
    }

    #[test]
    fn quick_accelerator_runs_a_small_network() {
        let accel = Accelerator::quick_cached(MacKind::Bsc).unwrap();
        let net = bsc_nn::models::lenet5();
        let report = accel.run_network(&net).unwrap();
        assert_eq!(report.layers().len(), net.layers.len());
        assert!(report.total_energy_fj() > 0.0);
        assert!(report.avg_tops_per_w() > 0.0);
        assert_eq!(report.total_macs(), net.total_macs());
    }

    #[test]
    fn telemetry_records_network_layers_and_matmuls() {
        let mut accel = Accelerator::quick_cached(MacKind::Bsc).unwrap();
        let tel = accel.enable_telemetry(1024);
        let net = bsc_nn::models::lenet5();
        accel.run_network(&net).unwrap();

        let snap = tel.metrics.snapshot();
        for layer in &net.layers {
            assert!(
                snap.counter(&format!("accel.layer.{}.cycles", layer.name)) > 0,
                "missing per-layer cycle counter for {}",
                layer.name
            );
        }
        // One TileStart per layer from the analytic path.
        let starts = tel
            .trace
            .snapshot()
            .events
            .iter()
            .filter(|e| e.kind() == "tile_start")
            .count();
        assert_eq!(starts, net.layers.len());
        // run_network was timed.
        assert_eq!(snap.histogram("accel.run_network_ns").map(|h| h.count), Some(1));

        // A functional matmul feeds the systolic counters through the
        // same hub.
        let k = accel.config().array.dot_length(Precision::Int8);
        let f = Matrix::from_fn(3, k, |r, c| ((r + c) % 5) as i64 - 2);
        let w = Matrix::from_fn(2, k, |r, c| ((r * c) % 3) as i64 - 1);
        accel.matmul(Precision::Int8, &f, &w).unwrap();
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("systolic.runs"), 1);
        assert_eq!(snap.counter("systolic.pe_fired"), 6);
    }

    #[test]
    fn matmul_through_facade_is_exact() {
        let accel = Accelerator::quick_cached(MacKind::Hps).unwrap();
        let k = accel.config().array.dot_length(Precision::Int8);
        let f = Matrix::from_fn(3, k, |r, c| ((r + c) % 5) as i64 - 2);
        let w = Matrix::from_fn(2, k, |r, c| ((r * c) % 3) as i64 - 1);
        let run = accel.matmul(Precision::Int8, &f, &w).unwrap();
        assert_eq!(run.output, f.matmul_nt(&w));
    }
}

#[cfg(test)]
mod conv_tests {
    use super::*;

    #[test]
    fn accelerator_conv2d_matches_golden() {
        let accel = Accelerator::quick_cached(MacKind::Bsc).unwrap();
        let p = Precision::Int4;
        let input = bsc_nn::Tensor::random(3, 6, 6, p.value_range(), 11);
        let weights = bsc_nn::ops::ConvWeights::from_fn(4, 3, 3, 3, |o, i, y, x| {
            (((o * 7 + i * 3 + y + x) % 15) as i64) - 7
        });
        let (out, stats) = accel.conv2d(p, &input, &weights, 1, 1).unwrap();
        let golden = bsc_nn::ops::conv2d(&input, &weights, 1, 1).unwrap();
        assert_eq!(out, golden);
        assert!(stats.cycles > 0);
        assert_eq!(out.shape(), (4, 6, 6));
    }
}
