//! Tenant-level SLO accounting: latency quantiles, shed/reject rates,
//! goodput, deadline attainment and energy attribution per tenant.
//!
//! The paper's headline numbers are *per workload*; the engine's batch
//! report was per job.  This module folds every [`JobOutcome`] of a
//! batch into one [`SloReport`] keyed by [`TenantId`]:
//!
//! * **latency** — an integer HDR-style [`QuantileSketch`] over
//!   completion latencies on the virtual batch clock (queue wait +
//!   execution), so p50/p95/p99 are deterministic integers;
//! * **outcome rates** — completed / rejected / shed counts, broken
//!   down by machine-readable reason slug;
//! * **goodput** — the fraction of submitted jobs that completed within
//!   their deadline (jobs without a deadline count as within);
//! * **SLO attainment** — observed p99 and goodput against a declared
//!   [`SloTarget`], plus the error-budget **burn rate**;
//! * **energy attribution** — per-layer energies of every completed job
//!   quantized to whole femtojoules and summed per tenant and per
//!   tenant × precision.  Because the attribution is an integer
//!   reduction over already-deterministic `LayerReport`s, per-tenant
//!   energies sum *exactly* to the batch total — "which tenant burned
//!   the joules" has one answer at any worker count;
//! * **windows** — tumbling [`WindowedAggregator`] series of completed
//!   / shed events on the virtual clock, the time axis of the serving
//!   dashboard.
//!
//! Everything here is a serial reduction over the outcome list in
//! submission order; nothing reads wall time, so the report is
//! bit-identical at any worker count and gated at `--tol 0` in CI.

use std::collections::BTreeMap;
use std::fmt;

use bsc_telemetry::{QuantileSketch, SketchSnapshot, WindowedAggregator};

use crate::engine::JobOutcome;
use crate::report::NetworkReport;

/// The tenant a job is accounted to.  Free-form, case-sensitive;
/// [`TenantId::default`] is the `"default"` tenant jobs land in when a
/// manifest names none.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// A tenant id from any string-ish value.
    pub fn new(id: impl Into<String>) -> Self {
        TenantId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId("default".into())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        TenantId::new(s)
    }
}

/// A tenant's declared service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// The p99 completion latency (queue wait + execution, virtual
    /// cycles) the tenant expects.
    pub latency_p99_cycles: u64,
    /// The minimum acceptable goodput: completed-within-deadline jobs
    /// over submitted jobs, in `0.0 ..= 1.0`.
    pub min_goodput: f64,
}

/// One tenant's observed performance against its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAttainment {
    /// Observed p99 ≤ target p99.
    pub latency_p99_ok: bool,
    /// Observed goodput ≥ target minimum.
    pub goodput_ok: bool,
    /// Both conditions hold.
    pub attained: bool,
    /// Observed p99 over target p99 (1.0 = exactly at target).
    pub p99_ratio: f64,
    /// Error-budget burn: `(1 - goodput) / (1 - min_goodput)`.  1.0
    /// means the budget is exactly spent; capped at 10⁶ when the target
    /// leaves no budget at all.
    pub burn_rate: f64,
}

/// One tumbling window of a tenant's activity on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantWindow {
    /// Window index (`start_cycle / width`).
    pub window: u64,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Jobs completed in the window (by completion cycle).
    pub completed: u64,
    /// Jobs shed in the window (by projected completion cycle).
    pub shed: u64,
    /// Useful MACs completed in the window.
    pub macs: u64,
}

/// Everything the observatory knows about one tenant after a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// The tenant.
    pub tenant: TenantId,
    /// Declared target, when the tenant has one.
    pub target: Option<SloTarget>,
    /// Jobs submitted (every outcome counts exactly once).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Jobs admitted then dropped at schedule time.
    pub shed: u64,
    /// Rejections by reason slug, sorted by slug.
    pub rejected_by_reason: Vec<(String, u64)>,
    /// Sheds by reason slug, sorted by slug.
    pub shed_by_reason: Vec<(String, u64)>,
    /// Completion-latency sketch (queue wait + execution, cycles).
    pub latency: SketchSnapshot,
    /// Completed jobs that had a deadline.
    pub deadline_jobs: u64,
    /// Completed jobs that met their deadline.
    pub deadline_met: u64,
    /// Completed-within-deadline jobs over submitted jobs.
    pub goodput: f64,
    /// Useful MACs of the tenant's completed jobs.
    pub macs: u64,
    /// Energy attribution in whole femtojoules (per-layer energies
    /// rounded then summed, so tenant totals add exactly).
    pub energy_fj: u64,
    /// Energy split by precision slug (`int2`/`int4`/`int8`), summing
    /// exactly to `energy_fj`.
    pub energy_by_precision: Vec<(String, u64)>,
    /// Tumbling-window activity series, sorted by window.
    pub windows: Vec<TenantWindow>,
    /// Observed-vs-target verdict (`None` without a declared target).
    pub attainment: Option<SloAttainment>,
}

impl TenantSlo {
    /// Shed jobs over submitted jobs.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 { 0.0 } else { self.shed as f64 / self.submitted as f64 }
    }

    /// Rejected jobs over submitted jobs.
    pub fn reject_rate(&self) -> f64 {
        if self.submitted == 0 { 0.0 } else { self.rejected as f64 / self.submitted as f64 }
    }

    /// Met deadlines over completed jobs that had one (`None` when no
    /// completed job carried a deadline).
    pub fn deadline_hit_rate(&self) -> Option<f64> {
        if self.deadline_jobs == 0 {
            None
        } else {
            Some(self.deadline_met as f64 / self.deadline_jobs as f64)
        }
    }
}

/// The per-tenant SLO view of one batch.  Tenants are sorted by id, so
/// serialization order is canonical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloReport {
    /// Width of the tumbling windows in virtual cycles.
    pub window_width_cycles: u64,
    /// One row per tenant that submitted at least one job.
    pub tenants: Vec<TenantSlo>,
}

impl SloReport {
    /// The named tenant's row, when present.
    pub fn tenant(&self, id: &str) -> Option<&TenantSlo> {
        self.tenants.iter().find(|t| t.tenant.as_str() == id)
    }

    /// Sum of per-tenant energy attributions in femtojoules.  Exactly
    /// equals the quantized batch total — integer addition is
    /// associative, so regrouping by tenant cannot drift.
    pub fn total_energy_fj(&self) -> u64 {
        self.tenants.iter().map(|t| t.energy_fj).sum()
    }
}

/// Quantizes one energy value to whole femtojoules.  Attribution sums
/// these integers, never the raw floats, so grouping by tenant /
/// precision / batch always reaches identical totals.
pub fn quantize_energy_fj(energy_fj: f64) -> u64 {
    if energy_fj <= 0.0 { 0 } else { energy_fj.round() as u64 }
}

#[derive(Default)]
struct TenantAcc {
    target: Option<SloTarget>,
    submitted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    rejected_by_reason: BTreeMap<&'static str, u64>,
    shed_by_reason: BTreeMap<&'static str, u64>,
    latency: Option<QuantileSketch>,
    deadline_jobs: u64,
    deadline_met: u64,
    macs: u64,
    energy_fj: u64,
    energy_by_precision: BTreeMap<String, u64>,
}

/// Folds [`JobOutcome`]s into a per-tenant [`SloReport`].
///
/// Construction fixes the tumbling-window width; callers derive it from
/// the batch makespan (see [`crate::Engine::run_batch`]) so the
/// dashboard's time axis scales with the batch instead of wall time.
pub struct SloAccountant {
    windows: WindowedAggregator,
    tenants: BTreeMap<TenantId, TenantAcc>,
    observations: u64,
}

impl SloAccountant {
    /// An empty accountant with `window_width_cycles`-wide windows.
    pub fn new(window_width_cycles: u64) -> Self {
        SloAccountant {
            windows: WindowedAggregator::new(window_width_cycles),
            tenants: BTreeMap::new(),
            observations: 0,
        }
    }

    /// Lifetime number of streamed observations (completions +
    /// rejections + sheds) — the fold's deterministic work metric for
    /// self-profiling.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Declares a tenant's target (idempotent; the last declaration
    /// wins).  Targets may be declared for tenants that never submit —
    /// they simply produce no row.
    pub fn declare_target(&mut self, tenant: TenantId, target: SloTarget) {
        self.tenants.entry(tenant).or_default().target = Some(target);
    }

    /// Folds one outcome.  Every submission must be observed exactly
    /// once for the rates to mean anything.
    ///
    /// Batch mode's arrival time is cycle 0, so latency equals the
    /// completion cycle; this delegates to the streaming observers that
    /// online serving calls directly with `completion − arrival`.
    pub fn observe(&mut self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Completed(r) => self.observe_completion(
                outcome.tenant(),
                r.completion_cycle,
                r.completion_cycle,
                r.deadline_met(),
                &r.report,
            ),
            JobOutcome::Rejected { reason, .. } => {
                self.observe_rejection(outcome.tenant(), reason.slug());
            }
            JobOutcome::Shed { reason, .. } => {
                self.observe_shed(outcome.tenant(), reason.slug(), reason.decision_cycle());
            }
        }
    }

    /// Streams one completed job: `latency_cycles` is whatever clock
    /// difference the caller's arrival model defines (batch: completion
    /// cycle; online: completion − arrival), `completion_cycle` places
    /// the event on the window axis, and the energy/MAC attribution is
    /// read off the job's [`NetworkReport`].
    pub fn observe_completion(
        &mut self,
        tenant: &TenantId,
        latency_cycles: u64,
        completion_cycle: u64,
        deadline_met: Option<bool>,
        report: &NetworkReport,
    ) {
        self.observations += 1;
        let acc = self.tenants.entry(tenant.clone()).or_default();
        acc.submitted += 1;
        acc.completed += 1;
        acc.latency.get_or_insert_with(QuantileSketch::new).record(latency_cycles);
        if let Some(met) = deadline_met {
            acc.deadline_jobs += 1;
            if met {
                acc.deadline_met += 1;
            }
        }
        acc.macs += report.total_macs();
        // fJ-exact attribution: quantize per layer, sum integers.
        for layer in report.layers() {
            let fj = quantize_energy_fj(layer.energy_fj);
            acc.energy_fj += fj;
            *acc
                .energy_by_precision
                .entry(format!("int{}", layer.precision.bits()))
                .or_default() += fj;
        }
        self.windows.record(
            completion_cycle,
            &[("tenant", tenant.as_str()), ("outcome", "completed")],
            report.total_macs(),
        );
    }

    /// Streams one admission rejection under a machine-readable reason
    /// slug (see [`crate::RejectReason::slug`]).
    pub fn observe_rejection(&mut self, tenant: &TenantId, slug: &'static str) {
        self.observe_rejections(tenant, slug, 1);
    }

    /// Streams `count` admission rejections at once — exactly equivalent
    /// to `count` [`SloAccountant::observe_rejection`] calls.  Rejections
    /// carry no per-event payload (no latency sample, no windowed
    /// series), so a caller that groups them by `(tenant, slug)` can
    /// fold millions of decisions in a handful of calls.
    pub fn observe_rejections(&mut self, tenant: &TenantId, slug: &'static str, count: u64) {
        self.observations += count;
        let acc = self.tenants.entry(tenant.clone()).or_default();
        acc.submitted += count;
        acc.rejected += count;
        *acc.rejected_by_reason.entry(slug).or_default() += count;
    }

    /// Streams one shed decision at `decision_cycle` under a
    /// machine-readable reason slug (see [`crate::ShedReason::slug`]).
    pub fn observe_shed(&mut self, tenant: &TenantId, slug: &'static str, decision_cycle: u64) {
        self.observations += 1;
        let acc = self.tenants.entry(tenant.clone()).or_default();
        acc.submitted += 1;
        acc.shed += 1;
        *acc.shed_by_reason.entry(slug).or_default() += 1;
        self.windows.record(
            decision_cycle,
            &[("tenant", tenant.as_str()), ("outcome", "shed")],
            0,
        );
    }

    /// The finished per-tenant report.
    pub fn report(&self) -> SloReport {
        let window_snapshot = self.windows.snapshot();
        let tenants = self
            .tenants
            .iter()
            .filter(|(_, acc)| acc.submitted > 0)
            .map(|(tenant, acc)| {
                let latency =
                    acc.latency.as_ref().map(|s| s.snapshot()).unwrap_or_default();
                // Goodput counts completed jobs that met their deadline
                // (deadline-less jobs trivially meet).
                let good = acc.completed - (acc.deadline_jobs - acc.deadline_met);
                let goodput =
                    if acc.submitted == 0 { 0.0 } else { good as f64 / acc.submitted as f64 };
                let attainment = acc.target.map(|t| {
                    let latency_p99_ok = latency.p99 <= t.latency_p99_cycles;
                    let goodput_ok = goodput >= t.min_goodput;
                    let p99_ratio = if t.latency_p99_cycles == 0 {
                        0.0
                    } else {
                        latency.p99 as f64 / t.latency_p99_cycles as f64
                    };
                    let bad = 1.0 - goodput;
                    let budget = 1.0 - t.min_goodput;
                    let burn_rate =
                        if budget > 0.0 { (bad / budget).min(1e6) } else if bad > 0.0 { 1e6 } else { 0.0 };
                    SloAttainment {
                        latency_p99_ok,
                        goodput_ok,
                        attained: latency_p99_ok && goodput_ok,
                        p99_ratio,
                        burn_rate,
                    }
                });
                let mut windows: BTreeMap<u64, TenantWindow> = BTreeMap::new();
                for (w, labels, cell) in &window_snapshot {
                    if labels.get("tenant") != Some(tenant.as_str()) {
                        continue;
                    }
                    let row = windows.entry(*w).or_insert(TenantWindow {
                        window: *w,
                        start_cycle: *w * self.windows.width_cycles(),
                        completed: 0,
                        shed: 0,
                        macs: 0,
                    });
                    match labels.get("outcome") {
                        Some("completed") => {
                            row.completed += cell.count;
                            row.macs += cell.sum;
                        }
                        Some("shed") => row.shed += cell.count,
                        _ => {}
                    }
                }
                TenantSlo {
                    tenant: tenant.clone(),
                    target: acc.target,
                    submitted: acc.submitted,
                    completed: acc.completed,
                    rejected: acc.rejected,
                    shed: acc.shed,
                    rejected_by_reason: acc
                        .rejected_by_reason
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    shed_by_reason: acc
                        .shed_by_reason
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    latency,
                    deadline_jobs: acc.deadline_jobs,
                    deadline_met: acc.deadline_met,
                    goodput,
                    macs: acc.macs,
                    energy_fj: acc.energy_fj,
                    energy_by_precision: acc
                        .energy_by_precision
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                    windows: windows.into_values().collect(),
                    attainment,
                }
            })
            .collect();
        SloReport { window_width_cycles: self.windows.width_cycles(), tenants }
    }
}

/// The tumbling-window width for a batch spanning `horizon_cycles`:
/// `horizon / 32` rounded up to a power of two (≥ 1), so a dashboard
/// gets ~32–64 windows regardless of batch scale and the width is a
/// pure function of the schedule.
pub fn window_width_for_horizon(horizon_cycles: u64) -> u64 {
    (horizon_cycles / 32).max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobReport, RejectReason, ShedReason};
    use crate::report::NetworkReport;

    fn completed(tenant: &str, completion: u64, deadline: Option<u64>) -> JobOutcome {
        JobOutcome::Completed(JobReport {
            name: format!("{tenant}-{completion}"),
            tenant: TenantId::new(tenant),
            queue_wait_cycles: 0,
            completion_cycle: completion,
            deadline_cycles: deadline,
            report: NetworkReport::new("toy".into(), bsc_mac::MacKind::Bsc, 2000.0, vec![]),
        })
    }

    #[test]
    fn rates_and_goodput_fold_every_outcome_once() {
        let mut acc = SloAccountant::new(100);
        acc.declare_target(TenantId::new("a"), SloTarget { latency_p99_cycles: 500, min_goodput: 0.5 });
        acc.observe(&completed("a", 50, None));
        acc.observe(&completed("a", 150, Some(200)));
        acc.observe(&JobOutcome::Rejected {
            name: "r".into(),
            tenant: TenantId::new("a"),
            reason: RejectReason::QueueFull { capacity: 2 },
        });
        acc.observe(&JobOutcome::Shed {
            name: "s".into(),
            tenant: TenantId::new("a"),
            reason: ShedReason::DeadlineMissed { completion_cycle: 320, deadline_cycles: 300 },
        });
        let report = acc.report();
        let a = report.tenant("a").unwrap();
        assert_eq!((a.submitted, a.completed, a.rejected, a.shed), (4, 2, 1, 1));
        assert_eq!(a.rejected_by_reason, vec![("queue_full".to_string(), 1)]);
        assert_eq!(a.shed_by_reason, vec![("deadline_missed".to_string(), 1)]);
        assert_eq!(a.latency.count, 2);
        assert_eq!(a.deadline_jobs, 1);
        assert_eq!(a.deadline_met, 1);
        assert!((a.goodput - 0.5).abs() < 1e-12);
        assert!((a.shed_rate() - 0.25).abs() < 1e-12);
        assert_eq!(a.deadline_hit_rate(), Some(1.0));
        // Windows: completions at 50 and 150, shed at 320.
        assert_eq!(a.windows.len(), 3);
        assert_eq!((a.windows[0].completed, a.windows[0].shed), (1, 0));
        assert_eq!((a.windows[2].completed, a.windows[2].shed), (0, 1));
        // Target met: p99 (150) <= 500 and goodput 0.5 >= 0.5.
        let att = a.attainment.unwrap();
        assert!(att.attained && att.latency_p99_ok && att.goodput_ok);
        assert!((att.burn_rate - 1.0).abs() < 1e-9, "budget exactly spent");
    }

    #[test]
    fn missed_targets_report_burn_and_ratio() {
        let mut acc = SloAccountant::new(64);
        acc.declare_target(TenantId::new("t"), SloTarget { latency_p99_cycles: 100, min_goodput: 0.9 });
        acc.observe(&completed("t", 400, None));
        acc.observe(&JobOutcome::Shed {
            name: "s".into(),
            tenant: TenantId::new("t"),
            reason: ShedReason::DeadlineMissed { completion_cycle: 500, deadline_cycles: 450 },
        });
        let report = acc.report();
        let t = report.tenant("t").unwrap();
        let att = t.attainment.unwrap();
        assert!(!att.attained && !att.latency_p99_ok && !att.goodput_ok);
        assert!(att.p99_ratio >= 4.0, "p99 {} vs target 100", t.latency.p99);
        // goodput 0.5 against min 0.9: burn = 0.5 / 0.1 = 5.
        assert!((att.burn_rate - 5.0).abs() < 1e-9, "burn {}", att.burn_rate);
    }

    #[test]
    fn tenants_without_target_have_no_attainment() {
        let mut acc = SloAccountant::new(1);
        acc.observe(&completed("free", 10, None));
        let report = acc.report();
        let t = report.tenant("free").unwrap();
        assert!(t.attainment.is_none());
        assert_eq!(t.latency.p50, 10);
    }

    #[test]
    fn window_width_is_a_power_of_two_scaling_with_horizon() {
        assert_eq!(window_width_for_horizon(0), 1);
        assert_eq!(window_width_for_horizon(31), 1);
        assert_eq!(window_width_for_horizon(32 * 100), 128);
        let w = window_width_for_horizon(1_002_550_920);
        assert!(w.is_power_of_two());
        let windows = 1_002_550_920 / w;
        assert!((16..=64).contains(&windows), "{windows} windows of {w}");
    }

    #[test]
    fn quantization_is_stable_under_grouping() {
        // The exactness claim in one line: integer adds regroup freely.
        let parts = [1234.4, 567.8, 90.1, 2.49, 1e12 + 0.6];
        let total: u64 = parts.iter().map(|&p| quantize_energy_fj(p)).sum();
        let (a, b): (Vec<_>, Vec<_>) = parts.iter().partition(|&&p| p < 100.0);
        let grouped: u64 = a.iter().map(|&&p| quantize_energy_fj(p)).sum::<u64>()
            + b.iter().map(|&&p| quantize_energy_fj(p)).sum::<u64>();
        assert_eq!(total, grouped);
        assert_eq!(quantize_energy_fj(-5.0), 0);
    }
}
