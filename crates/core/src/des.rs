//! Deterministic discrete-event scheduling primitives.
//!
//! The engine's original batch planner was a serial `for` loop over a
//! virtual clock.  Online serving needs the same determinism with
//! *interleaved* event streams — job arrivals from open-loop traffic
//! generators racing shard completions — so this module provides the
//! two building blocks both modes share:
//!
//! * [`EventQueue`]: a binary-heap priority queue whose total order is
//!   the triple `(time, priority, seq)`.  At equal times, completions
//!   ([`PRIORITY_COMPLETION`]) are delivered before arrivals
//!   ([`PRIORITY_ARRIVAL`]) so a shard freed at cycle *t* can accept a
//!   job arriving at cycle *t*; remaining ties break FIFO by push
//!   sequence number.  That triple is the **entire** tie-break contract
//!   — nothing about heap internals or hash order leaks into results,
//!   which is what makes every consumer bit-identical at any worker
//!   count.
//! * [`ArrivalGen`]: seeded open-loop arrival processes on the integer
//!   cycle clock — Poisson via an inverse-CDF in fixed point (no
//!   floats, so no platform-dependent rounding), bursty on/off gating,
//!   and diurnal rate tables.  Inter-arrival gaps are clamped to ≥ 1
//!   cycle so every generator makes progress.
//!
//! All arithmetic is integer (Q32 fixed point where fractions are
//! needed); nothing reads wall time.

use bsc_netlist::rng::Rng64;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Event priority of shard completions: at equal times a completion is
/// delivered **before** any arrival, so the freed capacity is visible
/// to a job arriving on the same cycle.
pub const PRIORITY_COMPLETION: u8 = 0;

/// Event priority of job arrivals (after completions at equal times).
pub const PRIORITY_ARRIVAL: u8 = 1;

/// One queued event: ordering key plus opaque payload.
struct Entry<T> {
    time: u64,
    priority: u8,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (u64, u8, u64) {
        (self.time, self.priority, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A deterministic discrete-event queue ordered by `(time, priority,
/// seq)`.  `seq` is assigned at push time, so equal `(time, priority)`
/// events pop in push order (FIFO) — see the module docs for why this
/// triple is the complete determinism contract.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
    pops: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, pops: 0 }
    }

    /// Enqueues `payload` at `time` with the given priority class
    /// ([`PRIORITY_COMPLETION`] or [`PRIORITY_ARRIVAL`]).
    pub fn push(&mut self, time: u64, priority: u8, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, priority, seq, payload }));
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.time, e.payload));
        self.pops += u64::from(popped.is_some());
        popped
    }

    /// Lifetime number of pushes (the next sequence number).  Together
    /// with [`EventQueue::pops`] this gives consumers exact heap-op
    /// accounting for self-profiling without touching the hot path.
    pub fn pushes(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime number of successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Per-lane FIFO queues of completion timestamps, popped in coalesced
/// same-cycle bursts.
///
/// A shard's completion times are **monotone**: each job's completion is
/// `max(busy_until, now) + cycles`, and `busy_until` advances to it, so
/// per shard the stream never goes backwards.  That makes a
/// [`BinaryHeap`] overkill — a plain `VecDeque` per shard *is* sorted —
/// and lets the consumer pop **every** completion due at the earliest
/// pending cycle in one O(burst) operation instead of one heap pop
/// (plus sift-down) per job.
///
/// The delivery order contract is *identical* to holding the same
/// completions in an [`EventQueue`] at [`PRIORITY_COMPLETION`] alongside
/// arrivals at [`PRIORITY_ARRIVAL`]:
///
/// * entries are stamped with a push-order `seq`, and a burst returns
///   its lanes sorted by `seq` — FIFO within the same cycle, exactly the
///   unified queue's tie-break (completion seqs are a subsequence of the
///   global push order, so relative order is preserved);
/// * the consumer merges with the arrival queue by delivering a burst
///   whenever `lanes.peek_time() <= arrivals.peek_time()` — completions
///   before same-cycle arrivals, the [`PRIORITY_COMPLETION`] rule.
///
/// `tests/des_conformance.rs` pins this equivalence against a reference
/// unified queue.
pub struct CompletionLanes {
    lanes: Vec<VecDeque<(u64, u64)>>,
    /// Scratch for sorting one burst by push seq (reused across pops).
    scratch: Vec<(u64, usize)>,
    next_seq: u64,
    len: usize,
    pops: u64,
}

impl CompletionLanes {
    /// Empty lanes, one per shard.
    pub fn new(n_lanes: usize) -> Self {
        CompletionLanes {
            lanes: (0..n_lanes).map(|_| VecDeque::new()).collect(),
            scratch: Vec::new(),
            next_seq: 0,
            len: 0,
            pops: 0,
        }
    }

    /// Enqueues a completion on `lane` at `time`.  Times must be
    /// non-decreasing per lane (the shard `busy_until` invariant).
    pub fn push(&mut self, lane: usize, time: u64) {
        debug_assert!(
            self.lanes[lane].back().is_none_or(|&(t, _)| t <= time),
            "lane {lane} completion times must be monotone"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane].push_back((time, seq));
        self.len += 1;
    }

    /// The earliest pending completion cycle across all lanes.
    pub fn peek_time(&self) -> Option<u64> {
        self.lanes.iter().filter_map(|l| l.front()).map(|&(t, _)| t).min()
    }

    /// Pops **every** completion due at the earliest pending cycle into
    /// `out` (lane indices in push order) and returns that cycle, or
    /// `None` when no completions are pending.  One burst costs one lane
    /// scan plus a sort of the burst itself — no per-job heap traffic.
    pub fn pop_burst(&mut self, out: &mut Vec<usize>) -> Option<u64> {
        out.clear();
        let t = self.peek_time()?;
        self.scratch.clear();
        for (lane, q) in self.lanes.iter_mut().enumerate() {
            while let Some(&(time, seq)) = q.front() {
                if time != t {
                    break;
                }
                q.pop_front();
                self.scratch.push((seq, lane));
            }
        }
        self.scratch.sort_unstable();
        out.extend(self.scratch.iter().map(|&(_, lane)| lane));
        self.len -= out.len();
        self.pops += out.len() as u64;
        Some(t)
    }

    /// Lifetime number of pushes.
    pub fn pushes(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime number of popped completions (summed over bursts).
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// ln 2 in Q32 fixed point (`⌊ln 2 · 2³²⌉`).
const LN2_Q32: u64 = 2_977_044_472;

/// `log₂(u)` in Q32 fixed point for `u ≥ 1`: integer part from the MSB
/// position, 32 fractional bits by iterative squaring of the normalized
/// mantissa (the classic shift-and-square binary logarithm — exact at
/// powers of two, monotone everywhere).
fn log2_q32(u: u64) -> u64 {
    debug_assert!(u >= 1);
    let msb = 63 - u64::from(u.leading_zeros());
    // Normalize the mantissa to Q32 in [1, 2): x = u / 2^msb.
    let mut x: u64 =
        if msb >= 32 { u >> (msb - 32) } else { u << (32 - msb) };
    let mut frac: u64 = 0;
    for i in 1..=32u64 {
        // Invariant: x is Q32 in [1, 2).  Squaring may reach [1, 4).
        x = ((u128::from(x) * u128::from(x)) >> 32) as u64;
        if x >= 1u64 << 33 {
            x >>= 1;
            frac |= 1u64 << (32 - i);
        }
    }
    (msb << 32) | frac
}

/// `−ln(u / 2⁶⁴)` in Q32 fixed point, for `u` in `[1, 2⁶⁴)`: the
/// inverse-CDF kernel of exponential sampling.  The maximum value is
/// `64 · ln 2 ≈ 44.36` (at `u = 1`), comfortably inside Q32 range.
pub fn neg_ln_unit_q32(u: u64) -> u64 {
    let u = u.max(1);
    let diff = (64u64 << 32) - log2_q32(u);
    ((u128::from(diff) * u128::from(LN2_Q32)) >> 32) as u64
}

/// An exponential inter-arrival sample with the given mean, from one
/// uniform 64-bit word: `Δ = mean · (−ln(u/2⁶⁴))`, computed entirely in
/// integer Q32 and clamped to ≥ 1 cycle so generators always advance.
fn sample_exponential(rng: &mut Rng64, mean_cycles: u64) -> u64 {
    let u = rng.next_u64();
    let q = neg_ln_unit_q32(u);
    let delta = ((u128::from(mean_cycles.max(1)) * u128::from(q)) >> 32) as u64;
    delta.max(1)
}

/// The diurnal mean in force at day-position `pos` (callers reduce the
/// timestamp mod the day length first).  Shared by the per-draw and
/// batched samplers so both look up rates identically.
fn diurnal_mean(segments: &[DiurnalSegment], mut pos: u64) -> u64 {
    let mut mean = segments[0].mean_interarrival_cycles;
    for s in segments {
        let d = s.duration_cycles.max(1);
        if pos < d {
            mean = s.mean_interarrival_cycles;
            break;
        }
        pos -= d;
    }
    mean
}

/// One segment of a diurnal rate table: `duration_cycles` of traffic at
/// `mean_interarrival_cycles`.  The table wraps (a "day" is the sum of
/// all segment durations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiurnalSegment {
    /// How long this segment lasts on the cycle clock.
    pub duration_cycles: u64,
    /// Mean inter-arrival gap while inside this segment.
    pub mean_interarrival_cycles: u64,
}

/// An open-loop arrival process on the integer cycle clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// given mean.
    Poisson {
        /// Mean gap between consecutive arrivals.
        mean_interarrival_cycles: u64,
    },
    /// On/off gated Poisson: arrivals follow a Poisson process on an
    /// "active time" axis that only advances during on-windows, so
    /// bursts of Poisson traffic alternate with silent gaps.
    Bursty {
        /// Length of each active window.
        on_cycles: u64,
        /// Length of each silent window between active windows.
        off_cycles: u64,
        /// Mean inter-arrival gap *within* active windows.
        mean_interarrival_cycles: u64,
    },
    /// Piecewise-constant rate table that wraps around (e.g. a day of
    /// traffic).  The segment rate is sampled at the previous event's
    /// timestamp — a deliberate, documented approximation that keeps
    /// the inverse-CDF integer-exact.
    Diurnal {
        /// The repeating rate table (must be non-empty).
        segments: Vec<DiurnalSegment>,
    },
}

/// A seeded generator of strictly-increasing arrival timestamps for one
/// [`ArrivalProcess`].  Two generators with the same process and seed
/// emit identical streams on every platform.
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: Rng64,
    /// Last emitted wall-clock arrival (Poisson/Diurnal axis).
    last_cycle: u64,
    /// Accumulated active time (Bursty axis).
    active_cycles: u64,
}

impl ArrivalGen {
    /// A generator over `process` seeded with `seed`.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        ArrivalGen {
            process,
            rng: Rng64::seed_from_u64(seed),
            last_cycle: 0,
            active_cycles: 0,
        }
    }

    /// The next arrival's absolute cycle.  Strictly increasing (gaps
    /// are clamped to ≥ 1 cycle).
    pub fn next_arrival(&mut self) -> u64 {
        match &self.process {
            ArrivalProcess::Poisson { mean_interarrival_cycles } => {
                let mean = *mean_interarrival_cycles;
                self.last_cycle += sample_exponential(&mut self.rng, mean);
                self.last_cycle
            }
            ArrivalProcess::Bursty { on_cycles, off_cycles, mean_interarrival_cycles } => {
                // Poisson on the active-time axis, then warp active time
                // onto the wall clock by inserting one off-window after
                // every completed on-window.
                let (on, off, mean) =
                    ((*on_cycles).max(1), *off_cycles, *mean_interarrival_cycles);
                self.active_cycles += sample_exponential(&mut self.rng, mean);
                let a = self.active_cycles;
                self.last_cycle = (a / on) * (on + off) + a % on;
                self.last_cycle
            }
            ArrivalProcess::Diurnal { segments } => {
                assert!(!segments.is_empty(), "diurnal table must be non-empty");
                let day: u64 =
                    segments.iter().map(|s| s.duration_cycles.max(1)).sum();
                // Segment in force at the previous event's timestamp.
                let mean = diurnal_mean(segments, self.last_cycle % day.max(1));
                self.last_cycle += sample_exponential(&mut self.rng, mean);
                self.last_cycle
            }
        }
    }

    /// Appends the next `n` arrival cycles to `out` — the batched fast
    /// path.  Produces **bit-identical** timestamps to `n` calls of
    /// [`ArrivalGen::next_arrival`] (same RNG draws, same Q32
    /// arithmetic), but amortizes the per-call setup the scalar path
    /// repeats around every `-ln` evaluation: the clamped mean, the
    /// bursty on/off warp constants and the diurnal day length are
    /// hoisted once per refill, so consecutive draws from the same
    /// source share one resolved Q32 sampling environment and the inner
    /// loop is just `rng → neg_ln_unit_q32 → fixed-point scale`.
    /// `tests/des_conformance.rs` pins the equivalence per process at
    /// extreme rates.
    pub fn refill(&mut self, n: usize, out: &mut VecDeque<u64>) {
        out.reserve(n);
        match &self.process {
            ArrivalProcess::Poisson { mean_interarrival_cycles } => {
                let mean = (*mean_interarrival_cycles).max(1);
                let mut last = self.last_cycle;
                for _ in 0..n {
                    let q = neg_ln_unit_q32(self.rng.next_u64());
                    last += (((u128::from(mean) * u128::from(q)) >> 32) as u64).max(1);
                    out.push_back(last);
                }
                self.last_cycle = last;
            }
            ArrivalProcess::Bursty { on_cycles, off_cycles, mean_interarrival_cycles } => {
                let (on, off, mean) =
                    ((*on_cycles).max(1), *off_cycles, (*mean_interarrival_cycles).max(1));
                let period = on + off;
                let mut active = self.active_cycles;
                let mut last = self.last_cycle;
                for _ in 0..n {
                    let q = neg_ln_unit_q32(self.rng.next_u64());
                    active += (((u128::from(mean) * u128::from(q)) >> 32) as u64).max(1);
                    last = (active / on) * period + active % on;
                    out.push_back(last);
                }
                self.active_cycles = active;
                self.last_cycle = last;
            }
            ArrivalProcess::Diurnal { segments } => {
                assert!(!segments.is_empty(), "diurnal table must be non-empty");
                let day: u64 =
                    segments.iter().map(|s| s.duration_cycles.max(1)).sum::<u64>().max(1);
                let mut last = self.last_cycle;
                for _ in 0..n {
                    let mean = diurnal_mean(segments, last % day).max(1);
                    let q = neg_ln_unit_q32(self.rng.next_u64());
                    last += (((u128::from(mean) * u128::from(q)) >> 32) as u64).max(1);
                    out.push_back(last);
                }
                self.last_cycle = last;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_priority_then_seq() {
        let mut q = EventQueue::new();
        q.push(10, PRIORITY_ARRIVAL, "a@10");
        q.push(10, PRIORITY_COMPLETION, "c@10");
        q.push(5, PRIORITY_ARRIVAL, "a@5");
        q.push(10, PRIORITY_ARRIVAL, "a2@10");
        q.push(10, PRIORITY_COMPLETION, "c2@10");
        assert_eq!(q.peek_time(), Some(5));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        // Completions first at equal time; FIFO within a class.
        assert_eq!(order, ["a@5", "c@10", "c2@10", "a@10", "a2@10"]);
        assert!(q.is_empty());
    }

    #[test]
    fn neg_ln_is_exact_at_powers_of_two_and_monotone() {
        // −ln(2^63 / 2^64) = ln 2.
        assert_eq!(neg_ln_unit_q32(1u64 << 63), LN2_Q32);
        // −ln(2^62 / 2^64) = 2 ln 2.
        assert_eq!(neg_ln_unit_q32(1u64 << 62), 2 * LN2_Q32);
        // −ln(1 / 2^64) = 64 ln 2, the sampler's maximum.
        assert_eq!(neg_ln_unit_q32(1), 64 * LN2_Q32);
        // u → 2^64 ⇒ −ln(u/2^64) → 0.
        assert_eq!(neg_ln_unit_q32(u64::MAX), 0);
        // Monotone decreasing in u.
        let mut prev = u64::MAX;
        for sh in 0..64 {
            let v = neg_ln_unit_q32(1u64 << sh);
            assert!(v < prev, "not decreasing at 2^{sh}");
            prev = v;
        }
    }

    #[test]
    fn poisson_arrivals_are_strictly_increasing_with_the_right_mean() {
        let mut g = ArrivalGen::new(
            ArrivalProcess::Poisson { mean_interarrival_cycles: 1000 },
            7,
        );
        let mut last = 0;
        let n = 20_000u64;
        for _ in 0..n {
            let t = g.next_arrival();
            assert!(t > last);
            last = t;
        }
        // Sample mean within 5% of the nominal 1000 cycles.
        let mean = last / n;
        assert!((950..=1050).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let p = ArrivalProcess::Poisson { mean_interarrival_cycles: 64 };
        let mut a = ArrivalGen::new(p.clone(), 42);
        let mut b = ArrivalGen::new(p.clone(), 42);
        let mut c = ArrivalGen::new(p, 43);
        let sa: Vec<u64> = (0..256).map(|_| a.next_arrival()).collect();
        let sb: Vec<u64> = (0..256).map(|_| b.next_arrival()).collect();
        let sc: Vec<u64> = (0..256).map(|_| c.next_arrival()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn bursty_arrivals_never_land_in_off_windows() {
        let (on, off) = (100u64, 400u64);
        let mut g = ArrivalGen::new(
            ArrivalProcess::Bursty {
                on_cycles: on,
                off_cycles: off,
                mean_interarrival_cycles: 10,
            },
            9,
        );
        let mut last = 0;
        let mut in_first_window = 0u64;
        for _ in 0..5_000 {
            let t = g.next_arrival();
            assert!(t > last);
            last = t;
            // Phase within the (on + off) period must be inside the
            // on-window.
            assert!(t % (on + off) < on, "arrival at {t} is inside an off window");
            if t < on + off {
                in_first_window += 1;
            }
        }
        assert!(in_first_window > 0, "traffic starts in the first on-window");
    }

    #[test]
    fn completion_lanes_pop_whole_same_cycle_bursts_in_push_order() {
        let mut lanes = CompletionLanes::new(3);
        lanes.push(2, 10);
        lanes.push(0, 10);
        lanes.push(1, 5);
        lanes.push(1, 10);
        lanes.push(0, 20);
        assert_eq!(lanes.peek_time(), Some(5));
        assert_eq!(lanes.len(), 5);
        let mut burst = Vec::new();
        assert_eq!(lanes.pop_burst(&mut burst), Some(5));
        assert_eq!(burst, [1]);
        // All three cycle-10 completions in one burst, FIFO by push seq:
        // lane 2 was pushed first, then 0, then 1.
        assert_eq!(lanes.pop_burst(&mut burst), Some(10));
        assert_eq!(burst, [2, 0, 1]);
        assert_eq!(lanes.pop_burst(&mut burst), Some(20));
        assert_eq!(burst, [0]);
        assert_eq!(lanes.pop_burst(&mut burst), None);
        assert!(burst.is_empty() && lanes.is_empty());
        assert_eq!((lanes.pushes(), lanes.pops()), (5, 5));
    }

    #[test]
    fn completion_lanes_drain_repeated_times_within_one_lane() {
        // Equal times on one lane (zero-cycle jobs) coalesce into the
        // same burst, still in push order.
        let mut lanes = CompletionLanes::new(2);
        lanes.push(0, 7);
        lanes.push(1, 7);
        lanes.push(0, 7);
        let mut burst = Vec::new();
        assert_eq!(lanes.pop_burst(&mut burst), Some(7));
        assert_eq!(burst, [0, 1, 0]);
    }

    #[test]
    fn refill_matches_per_draw_sampling_for_every_process() {
        let processes = [
            ArrivalProcess::Poisson { mean_interarrival_cycles: 500 },
            ArrivalProcess::Bursty {
                on_cycles: 5_000,
                off_cycles: 20_000,
                mean_interarrival_cycles: 200,
            },
            ArrivalProcess::Diurnal {
                segments: vec![
                    DiurnalSegment { duration_cycles: 10_000, mean_interarrival_cycles: 50 },
                    DiurnalSegment { duration_cycles: 30_000, mean_interarrival_cycles: 900 },
                ],
            },
        ];
        for p in processes {
            let mut scalar = ArrivalGen::new(p.clone(), 20260808);
            let expect: Vec<u64> = (0..300).map(|_| scalar.next_arrival()).collect();
            // Uneven refill sizes must splice into the same stream.
            let mut batched = ArrivalGen::new(p.clone(), 20260808);
            let mut got = VecDeque::new();
            for n in [1usize, 7, 64, 100, 128] {
                batched.refill(n, &mut got);
            }
            assert_eq!(Vec::from(got), expect, "refill diverged for {p:?}");
        }
    }

    #[test]
    fn diurnal_rate_table_modulates_arrival_density() {
        // Half the day fast (mean 10), half slow (mean 1000).
        let day_half = 100_000u64;
        let mut g = ArrivalGen::new(
            ArrivalProcess::Diurnal {
                segments: vec![
                    DiurnalSegment { duration_cycles: day_half, mean_interarrival_cycles: 10 },
                    DiurnalSegment { duration_cycles: day_half, mean_interarrival_cycles: 1000 },
                ],
            },
            11,
        );
        let (mut fast, mut slow) = (0u64, 0u64);
        loop {
            let t = g.next_arrival();
            if t >= 2 * day_half {
                break;
            }
            if t % (2 * day_half) < day_half {
                fast += 1;
            } else {
                slow += 1;
            }
        }
        assert!(
            fast > 10 * slow.max(1),
            "fast half ({fast}) should dwarf slow half ({slow})"
        );
    }
}
