//! `repro online`: drive the multi-shard discrete-event serving
//! simulator from a JSON manifest and report cluster / shard / tenant
//! results.
//!
//! The manifest names the cluster (heterogeneous shards + dispatch
//! policy), the per-tenant SLO targets, and the open-loop traffic
//! sources (see `docs/serving.md`):
//!
//! ```json
//! {
//!   "cluster": {
//!     "policy": "least-outstanding",
//!     "seed": 7,
//!     "horizon_cycles": 40000000,
//!     "max_jobs": 200000,
//!     "max_outstanding": 8,
//!     "max_backlog_cycles": 500000,
//!     "workers": 2,
//!     "shards": [
//!       {"name": "bsc0", "kind": "bsc", "quick": true},
//!       {"name": "lpc0", "kind": "lpc", "quick": true, "mem": "edge"},
//!       {"name": "hps0", "kind": "hps", "quick": true, "mem": "edge",
//!        "bandwidth_bytes_per_cycle": 64}
//!     ]
//!   },
//!   "tenants": {"gold": {"latency_p99_cycles": 60000, "min_goodput": 0.9}},
//!   "sources": [
//!     {"name": "steady", "network": "micro", "tenant": "gold",
//!      "deadline_cycles": 60000,
//!      "arrivals": {"process": "poisson", "mean_interarrival_cycles": 400}}
//!   ]
//! }
//! ```
//!
//! `arrivals.process` is `poisson`, `bursty` (adds `on_cycles` /
//! `off_cycles`) or `diurnal` (adds `segments`, each with
//! `duration_cycles` + `mean_interarrival_cycles`).  Every export —
//! aggregate report, SLO report, event log, Perfetto timeline,
//! dashboard — is a pure function of the manifest, byte-identical at
//! any worker count, so `BENCH_online_baseline.json` is gated at
//! `--tol 0`.

use bsc_accel::cluster::{
    run_online_with_metrics, DispatchPolicy, JobTemplate, MetricsMode, OnlineConfig, OnlineReport,
    ShardSpec, TrafficSource, EVENT_LOG_CAP,
};
use bsc_accel::des::{ArrivalProcess, DiurnalSegment};
use bsc_accel::systolic::mem::{DramBandwidth, MemConfig};
use bsc_accel::{AcceleratorConfig, PrecisionPolicy, TenantId};
use bsc_mac::MacKind;
use bsc_telemetry::profile::Profiler;
use bsc_telemetry::{JsonBuilder, MetricsSnapshot, Telemetry};

use crate::serve::{lookup_network, parse_tenants, write_slo_tenants};

/// The result of one online run: the deterministic report plus the
/// metrics snapshot.
#[derive(Debug)]
pub struct OnlineRun {
    /// The cluster report (per-shard tallies, SLO fold, event log).
    pub report: OnlineReport,
    /// Shard names in shard order (for rendering / Perfetto groups).
    pub shard_names: Vec<String>,
    /// Engine telemetry (shard-labeled outcome counters, queue waits).
    pub metrics: MetricsSnapshot,
}

fn err_at(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

fn u64_field(
    obj: &bsc_telemetry::JsonValue,
    ctx: &str,
    key: &str,
) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| err_at(ctx, format!("{key}: expected a non-negative integer")))?;
            Ok(Some(n as u64))
        }
    }
}

fn parse_shard(spec: &bsc_telemetry::JsonValue, i: usize) -> Result<ShardSpec, String> {
    let ctx = format!("cluster.shards[{i}]");
    let name = spec
        .get("name")
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .unwrap_or_else(|| format!("shard{i}"));
    let kind = match spec
        .get("kind")
        .and_then(|v| v.as_str())
        .unwrap_or("bsc")
        .to_ascii_lowercase()
        .as_str()
    {
        "bsc" => MacKind::Bsc,
        "lpc" => MacKind::Lpc,
        "hps" => MacKind::Hps,
        other => return Err(err_at(&ctx, format!("unknown architecture `{other}`"))),
    };
    let quick = matches!(spec.get("quick"), Some(bsc_telemetry::JsonValue::Bool(true)));
    let mut accel =
        if quick { AcceleratorConfig::quick(kind) } else { AcceleratorConfig::paper(kind) };
    let mut mem = match spec.get("mem").and_then(|v| v.as_str()) {
        None | Some("infinite") => MemConfig::infinite(),
        Some("edge") => MemConfig::edge(),
        Some(other) => {
            return Err(err_at(&ctx, format!("mem: unknown preset `{other}` (infinite|edge)")))
        }
    };
    if let Some(bw) = u64_field(spec, &ctx, "bandwidth_bytes_per_cycle")? {
        if bw == 0 {
            return Err(err_at(&ctx, "bandwidth_bytes_per_cycle: must be positive"));
        }
        mem = mem.with_bandwidth(DramBandwidth::BytesPerCycle(bw));
    }
    accel = accel.with_mem(mem);
    Ok(ShardSpec { name, accel })
}

fn parse_arrivals(
    spec: &bsc_telemetry::JsonValue,
    ctx: &str,
) -> Result<ArrivalProcess, String> {
    let arrivals = spec.get("arrivals").ok_or_else(|| err_at(ctx, "missing `arrivals`"))?;
    let mean = |obj: &bsc_telemetry::JsonValue, c: &str| -> Result<u64, String> {
        u64_field(obj, c, "mean_interarrival_cycles")?
            .filter(|m| *m >= 1)
            .ok_or_else(|| err_at(c, "mean_interarrival_cycles: expected a positive integer"))
    };
    match arrivals.get("process").and_then(|v| v.as_str()).unwrap_or("poisson") {
        "poisson" => Ok(ArrivalProcess::Poisson {
            mean_interarrival_cycles: mean(arrivals, ctx)?,
        }),
        "bursty" => {
            let on = u64_field(arrivals, ctx, "on_cycles")?
                .filter(|v| *v >= 1)
                .ok_or_else(|| err_at(ctx, "on_cycles: expected a positive integer"))?;
            let off = u64_field(arrivals, ctx, "off_cycles")?
                .ok_or_else(|| err_at(ctx, "off_cycles: expected a non-negative integer"))?;
            Ok(ArrivalProcess::Bursty {
                on_cycles: on,
                off_cycles: off,
                mean_interarrival_cycles: mean(arrivals, ctx)?,
            })
        }
        "diurnal" => {
            let segs = arrivals
                .get("segments")
                .and_then(|v| v.as_array())
                .filter(|a| !a.is_empty())
                .ok_or_else(|| err_at(ctx, "segments: expected a non-empty array"))?;
            let mut segments = Vec::with_capacity(segs.len());
            for (k, seg) in segs.iter().enumerate() {
                let sctx = format!("{ctx}.segments[{k}]");
                segments.push(DiurnalSegment {
                    duration_cycles: u64_field(seg, &sctx, "duration_cycles")?
                        .filter(|v| *v >= 1)
                        .ok_or_else(|| {
                            err_at(&sctx, "duration_cycles: expected a positive integer")
                        })?,
                    mean_interarrival_cycles: mean(seg, &sctx)?,
                });
            }
            Ok(ArrivalProcess::Diurnal { segments })
        }
        other => Err(err_at(
            ctx,
            format!("arrivals.process: unknown process `{other}` (poisson|bursty|diurnal)"),
        )),
    }
}

/// Parses an online manifest into an [`OnlineConfig`].
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown
/// networks / precisions / policies, or out-of-range parameters.
pub fn parse_online_manifest(text: &str) -> Result<OnlineConfig, String> {
    let doc = bsc_telemetry::parse_json(text).map_err(|e| err_at("manifest", e))?;
    let cluster = doc.get("cluster").ok_or("manifest: missing `cluster` object")?;

    let shard_specs = cluster
        .get("shards")
        .and_then(|v| v.as_array())
        .filter(|a| !a.is_empty())
        .ok_or("cluster.shards: expected a non-empty array")?;
    let mut shards = Vec::with_capacity(shard_specs.len());
    for (i, spec) in shard_specs.iter().enumerate() {
        shards.push(parse_shard(spec, i)?);
    }

    let policy = match cluster.get("policy").and_then(|v| v.as_str()) {
        None => DispatchPolicy::LeastOutstanding,
        Some(s) => s.parse::<DispatchPolicy>().map_err(|e| err_at("cluster.policy", e))?,
    };
    let seed = u64_field(cluster, "cluster", "seed")?.unwrap_or(0);
    let horizon_cycles = u64_field(cluster, "cluster", "horizon_cycles")?
        .filter(|h| *h >= 1)
        .ok_or("cluster.horizon_cycles: expected a positive integer")?;
    let max_jobs = u64_field(cluster, "cluster", "max_jobs")?.unwrap_or(u64::MAX);
    let max_outstanding =
        u64_field(cluster, "cluster", "max_outstanding")?.unwrap_or(64);
    if max_outstanding == 0 {
        return Err("cluster.max_outstanding: must be positive".into());
    }
    let max_backlog_cycles = u64_field(cluster, "cluster", "max_backlog_cycles")?;
    let event_log_cap = u64_field(cluster, "cluster", "event_log_cap")?
        .map(|c| c as usize)
        .unwrap_or(EVENT_LOG_CAP);
    let workers = u64_field(cluster, "cluster", "workers")?
        .map(|w| {
            if w == 0 { Err("cluster.workers: must be positive".to_string()) } else { Ok(w as usize) }
        })
        .transpose()?;

    let tenants = parse_tenants(&doc)?;

    let source_specs = doc
        .get("sources")
        .and_then(|v| v.as_array())
        .filter(|a| !a.is_empty())
        .ok_or("manifest: missing non-empty `sources` array")?;
    let mut sources = Vec::with_capacity(source_specs.len());
    for (i, spec) in source_specs.iter().enumerate() {
        let ctx = format!("sources[{i}]");
        let net_name = spec
            .get("network")
            .and_then(|v| v.as_str())
            .ok_or_else(|| err_at(&ctx, "missing `network`"))?;
        let network = lookup_network(net_name).map_err(|e| err_at(&ctx, e))?;
        let name = spec
            .get("name")
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .unwrap_or_else(|| format!("source{i}"));
        let precision = match spec.get("precision").and_then(|v| v.as_str()) {
            None => PrecisionPolicy::AsTrained,
            Some(s) => s
                .parse::<PrecisionPolicy>()
                .map_err(|e| err_at(&ctx, format!("precision: {e}")))?,
        };
        let tenant = spec
            .get("tenant")
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| err_at(&ctx, "tenant: expected a string"))
            })
            .transpose()?
            .unwrap_or_else(|| "default".into());
        let slo = tenants.get(&tenant).copied();
        sources.push(TrafficSource {
            template: JobTemplate {
                name,
                tenant: TenantId::new(tenant),
                network,
                precision,
                deadline_cycles: u64_field(spec, &ctx, "deadline_cycles")?,
                slo,
            },
            process: parse_arrivals(spec, &ctx)?,
        });
    }

    Ok(OnlineConfig {
        shards,
        policy,
        seed,
        horizon_cycles,
        max_jobs,
        max_outstanding,
        max_backlog_cycles,
        event_log_cap,
        workers,
        sources,
    })
}

/// Runs an online manifest end to end.  `workers_override` (the CLI's
/// `--workers`) takes precedence over the manifest's worker count —
/// results are identical either way; only wall time changes.
///
/// # Errors
///
/// Returns a message on manifest, characterization or scheduling
/// failures.
pub fn online(manifest_text: &str, workers_override: Option<usize>) -> Result<OnlineRun, String> {
    online_profiled(manifest_text, workers_override, None)
}

/// [`online`] with an optional self-profiler attached (the engine of
/// `repro online --profile-out` and `repro profile`).  The profiler's
/// deterministic counter side is a pure function of the manifest; see
/// [`bsc_accel::cluster::run_online_profiled`].
///
/// # Errors
///
/// Same contract as [`online`].
pub fn online_profiled(
    manifest_text: &str,
    workers_override: Option<usize>,
    profiler: Option<&Profiler>,
) -> Result<OnlineRun, String> {
    online_with_metrics(manifest_text, workers_override, profiler, MetricsMode::Batched)
}

/// [`online_profiled`] under the legacy per-event metrics path
/// ([`MetricsMode::PerEventShadow`]) — the reference side of the
/// differential-equivalence harness in `tests/metrics_equivalence.rs`.
/// Every document it produces is byte-identical to [`online`]'s; it
/// exists so that equivalence stays a test, not an assumption.
///
/// # Errors
///
/// Same contract as [`online`].
pub fn online_shadow(
    manifest_text: &str,
    workers_override: Option<usize>,
) -> Result<OnlineRun, String> {
    online_with_metrics(manifest_text, workers_override, None, MetricsMode::PerEventShadow)
}

fn online_with_metrics(
    manifest_text: &str,
    workers_override: Option<usize>,
    profiler: Option<&Profiler>,
    mode: MetricsMode,
) -> Result<OnlineRun, String> {
    let mut config = parse_online_manifest(manifest_text)?;
    if workers_override.is_some() {
        config.workers = workers_override;
    }
    let telemetry = Telemetry::metrics_only();
    let report = run_online_with_metrics(&config, &telemetry, profiler, mode)
        .map_err(|e| err_at("online", e))?;
    bsc_accel::CharacterizationCache::global().publish(&telemetry);
    Ok(OnlineRun {
        shard_names: config.shards.iter().map(|s| s.name.clone()).collect(),
        report,
        metrics: telemetry.metrics.snapshot(),
    })
}

/// Aligned-text view of one online run.
pub fn render(run: &OnlineRun) -> String {
    use std::fmt::Write as _;
    let r = &run.report;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "online: {} policy, seed {}, horizon {} cycles: {} submitted / {} completed / {} rejected / {} shed, makespan {} cycles",
        r.policy,
        r.seed,
        r.horizon_cycles,
        r.submitted,
        r.completed,
        r.rejected,
        r.shed,
        r.makespan_cycles,
    );
    for s in &r.shards {
        let util = if r.makespan_cycles == 0 {
            0.0
        } else {
            s.busy_cycles as f64 / r.makespan_cycles as f64
        };
        let _ = writeln!(
            out,
            "shard {:<10} [{}] {:>8} completed / {:>6} rejected / {:>6} shed, busy {:>12} cyc (util {:.2}), peak outstanding {}, peak backlog {} cyc, {:.1} pJ",
            s.name,
            s.kind,
            s.completed,
            s.rejected,
            s.shed,
            s.busy_cycles,
            util,
            s.peak_outstanding,
            s.peak_backlog_cycles,
            s.energy_fj as f64 / 1e3,
        );
    }
    for f in &r.funnel {
        let _ = writeln!(
            out,
            "  funnel {:<10} offered {:>8} -> queue_full {:>6} | overloaded {:>6} | deadline_infeasible {:>6} | shed {:>6} | dispatched {:>8}",
            f.shard,
            f.offered,
            f.queue_full,
            f.overloaded,
            f.deadline_infeasible,
            f.shed_deadline,
            f.dispatched,
        );
    }
    for (labels, total) in run.metrics.labeled_counter("engine.jobs") {
        let _ = writeln!(out, "  engine.jobs{labels} {total}");
    }
    for t in &r.slo.tenants {
        let verdict = match &t.attainment {
            Some(a) if a.attained => "SLO met".to_string(),
            Some(a) => format!(
                "SLO MISSED (p99 {}, goodput {})",
                if a.latency_p99_ok { "ok" } else { "over" },
                if a.goodput_ok { "ok" } else { "under" },
            ),
            None => "no target".to_string(),
        };
        let _ = writeln!(
            out,
            "tenant {:<12} {} submitted / {} completed / {} rejected / {} shed, latency p99 {} cyc, goodput {:.2}, {:.1} pJ — {}",
            t.tenant,
            t.submitted,
            t.completed,
            t.rejected,
            t.shed,
            t.latency.p99,
            t.goodput,
            t.energy_fj as f64 / 1e3,
            verdict,
        );
    }
    if r.events_truncated > 0 {
        let _ = writeln!(
            out,
            "event log: first {} decisions kept, {} truncated",
            r.events.len(),
            r.events_truncated,
        );
    }
    out
}

/// Machine-readable aggregate report for the `BENCH_online_baseline.json`
/// CI gate.  Every field is a pure function of the manifest — no wall
/// clock, no process-global cache tallies — so the document is diffed at
/// `--tol 0` and byte-compared across worker counts.
pub fn report_json(run: &OnlineRun) -> String {
    let r = &run.report;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("cluster").begin_object();
    j.key("policy").string(&r.policy.to_string());
    j.key("seed").u64(r.seed);
    j.key("horizon_cycles").u64(r.horizon_cycles);
    j.key("shards").u64(r.shards.len() as u64);
    j.end_object();

    j.key("aggregate").begin_object();
    j.key("submitted").u64(r.submitted);
    j.key("completed").u64(r.completed);
    j.key("rejected").u64(r.rejected);
    j.key("shed").u64(r.shed);
    j.key("makespan_cycles").u64(r.makespan_cycles);
    j.key("total_energy_fj").u64(r.total_energy_fj());
    j.key("events_logged").u64(r.events.len() as u64);
    j.key("events_truncated").u64(r.events_truncated);
    j.end_object();

    j.key("shards").begin_array();
    for s in &r.shards {
        j.begin_object();
        j.key("name").string(&s.name);
        j.key("kind").string(&s.kind.to_string());
        j.key("completed").u64(s.completed);
        j.key("rejected").u64(s.rejected);
        j.key("shed").u64(s.shed);
        j.key("busy_cycles").u64(s.busy_cycles);
        j.key("last_completion_cycle").u64(s.last_completion_cycle);
        j.key("peak_outstanding").u64(s.peak_outstanding);
        j.key("peak_backlog_cycles").u64(s.peak_backlog_cycles);
        j.key("macs").u64(s.macs);
        j.key("energy_fj").u64(s.energy_fj);
        j.end_object();
    }
    j.end_array();

    // Admission-ladder funnel: stage-by-stage pass/stop counts per
    // shard; stages partition `offered`, so the gate catches any drift
    // in the ladder's decision mix, not just the aggregate outcome.
    j.key("funnel").begin_array();
    for f in &r.funnel {
        j.begin_object();
        j.key("shard").string(&f.shard);
        j.key("offered").u64(f.offered);
        j.key("queue_full").u64(f.queue_full);
        j.key("overloaded").u64(f.overloaded);
        j.key("deadline_infeasible").u64(f.deadline_infeasible);
        j.key("shed_deadline").u64(f.shed_deadline);
        j.key("dispatched").u64(f.dispatched);
        j.end_object();
    }
    j.end_array();

    // Depth observatory: the windowed per-shard series, sampled on the
    // virtual clock (deterministic), compact enough to gate whole.
    j.key("depth").begin_object();
    j.key("stride_cycles").u64(r.depth_stride_cycles);
    j.key("shards").begin_array();
    for d in &r.depth {
        j.begin_object();
        j.key("shard").string(&d.shard);
        j.key("samples").u64(d.samples.len() as u64);
        j.key("series").begin_array();
        for s in &d.samples {
            j.begin_array();
            j.u64(s.cycle);
            j.u64(s.outstanding);
            j.u64(s.backlog_cycles);
            j.end_array();
        }
        j.end_array();
        j.end_object();
    }
    j.end_array();
    j.end_object();

    j.key("counters").begin_object();
    // Cache hit/miss tallies are published from the process-global
    // characterization cache (cumulative across runs), so only the
    // run-scoped job counters are gated here.
    for name in [
        "engine.jobs.submitted",
        "engine.jobs.rejected",
        "engine.jobs.shed",
        "engine.jobs.completed",
        "engine.decision_log.truncated",
    ] {
        j.key(name).u64(run.metrics.counter(name));
    }
    j.end_object();

    j.key("queue_wait_cycles").begin_object();
    match run.metrics.histogram("engine.queue.wait_cycles") {
        Some(h) => {
            j.key("count").u64(h.count);
            j.key("max").u64(h.max);
            j.key("p50").f64(h.p50().unwrap_or(0.0));
            j.key("p95").f64(h.p95().unwrap_or(0.0));
            j.key("p99").f64(h.p99().unwrap_or(0.0));
        }
        None => {
            j.key("count").u64(0);
        }
    }
    j.end_object();

    // Wall clock (`engine.run_online_ns`) is deliberately omitted: the
    // report is byte-compared across worker counts, so every field must
    // be a pure function of the manifest.
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

/// Machine-readable per-tenant SLO report, sharing the exact tenant
/// layout of `repro serve`'s `--slo-out` (see
/// [`write_slo_tenants`](crate::serve)) under a cluster header.
pub fn slo_json(run: &OnlineRun) -> String {
    let slo = &run.report.slo;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("cluster").begin_object();
    j.key("policy").string(&run.report.policy.to_string());
    j.key("window_width_cycles").u64(slo.window_width_cycles);
    j.key("total_energy_fj").u64(slo.total_energy_fj());
    j.end_object();
    write_slo_tenants(&mut j, slo);
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

/// Structured event log: one strict-JSON line summarizing the run, then
/// one line per retained decision (the log is capped at
/// [`bsc_accel::cluster::EVENT_LOG_CAP`]; the header carries the
/// truncation count so consumers know the tail is aggregate-only).
pub fn events_jsonl(run: &OnlineRun) -> String {
    let r = &run.report;
    let mut lines = Vec::with_capacity(1 + r.events.len());

    let mut head = JsonBuilder::new();
    head.begin_object();
    head.key("event").string("online");
    head.key("policy").string(&r.policy.to_string());
    head.key("seed").u64(r.seed);
    head.key("submitted").u64(r.submitted);
    head.key("completed").u64(r.completed);
    head.key("rejected").u64(r.rejected);
    head.key("shed").u64(r.shed);
    head.key("makespan_cycles").u64(r.makespan_cycles);
    head.key("events_truncated").u64(r.events_truncated);
    head.end_object();
    lines.push(head.finish());

    for e in &r.events {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("event").string("job");
        j.key("job").string(&e.job);
        j.key("template").string(&e.template);
        j.key("tenant").string(e.tenant.as_str());
        j.key("shard").string(&e.shard);
        j.key("outcome").string(e.outcome);
        if let Some(reason) = e.reason {
            j.key("reason").string(reason);
        }
        j.key("arrival_cycle").u64(e.arrival_cycle);
        j.key("start_cycle").u64(e.start_cycle);
        j.key("completion_cycle").u64(e.completion_cycle);
        j.end_object();
        lines.push(j.finish());
    }

    let mut out = String::new();
    for line in lines {
        bsc_telemetry::parse_json(&line).expect("event line must be strict RFC 8259 JSON");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Chrome trace-event timeline of the online run: **one process (track
/// group) per shard**, named after the shard, with the retained
/// completed jobs as complete slices on the shard's dispatch track,
/// shed/rejected decisions as instant events on a decisions track, and
/// the depth observatory as a per-shard counter track (`ph:"C"`,
/// outstanding jobs + backlog).  Timestamps are model cycles (µs in the
/// viewer).
pub fn perfetto_json(run: &OnlineRun) -> String {
    const DISPATCH_TID: u64 = 1;
    const DECISIONS_TID: u64 = 2;
    let r = &run.report;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("displayTimeUnit").string("ms");
    j.key("otherData").begin_object();
    j.key("policy").string(&r.policy.to_string());
    j.key("makespan_cycles").u64(r.makespan_cycles);
    j.key("events_truncated").u64(r.events_truncated);
    j.key("truncated").bool(r.events_truncated > 0);
    j.end_object();
    j.key("traceEvents").begin_array();

    // One process per shard, in shard order.
    for (i, name) in run.shard_names.iter().enumerate() {
        let pid = i as u64 + 1;
        j.begin_object();
        j.key("ph").string("M");
        j.key("pid").u64(pid);
        j.key("name").string("process_name");
        j.key("args").begin_object();
        j.key("name").string(&format!("shard {name}"));
        j.end_object();
        j.end_object();
        for (tid, label) in [(DISPATCH_TID, "dispatch"), (DECISIONS_TID, "decisions")] {
            j.begin_object();
            j.key("ph").string("M");
            j.key("pid").u64(pid);
            j.key("tid").u64(tid);
            j.key("name").string("thread_name");
            j.key("args").begin_object();
            j.key("name").string(label);
            j.end_object();
            j.end_object();
        }
    }

    // Depth-observatory counter tracks: one per shard (the shard's own
    // process), rendered by Perfetto as stacked counter plots over the
    // virtual clock.
    for d in &r.depth {
        let pid = run
            .shard_names
            .iter()
            .position(|n| *n == d.shard)
            .map_or(0, |i| i as u64 + 1);
        for s in &d.samples {
            j.begin_object();
            j.key("ph").string("C");
            j.key("pid").u64(pid);
            j.key("name").string("queue depth");
            j.key("ts").u64(s.cycle);
            j.key("args").begin_object();
            j.key("outstanding").u64(s.outstanding);
            j.key("backlog_kcycles").u64(s.backlog_cycles / 1_000);
            j.end_object();
            j.end_object();
        }
    }

    for e in &r.events {
        let pid = run
            .shard_names
            .iter()
            .position(|n| *n == e.shard)
            .map_or(0, |i| i as u64 + 1);
        j.begin_object();
        if e.outcome == "completed" {
            j.key("ph").string("X");
            j.key("pid").u64(pid);
            j.key("tid").u64(DISPATCH_TID);
            j.key("name").string(&e.job);
            j.key("cat").string("job");
            j.key("ts").u64(e.start_cycle);
            j.key("dur").u64(e.completion_cycle - e.start_cycle);
        } else {
            j.key("ph").string("i");
            j.key("pid").u64(pid);
            j.key("tid").u64(DECISIONS_TID);
            j.key("name").string(&format!("{} {}", e.outcome, e.job));
            j.key("cat").string("decision");
            j.key("ts").u64(e.arrival_cycle);
            j.key("s").string("t");
        }
        j.key("args").begin_object();
        j.key("tenant").string(e.tenant.as_str());
        j.key("arrival_cycle").u64(e.arrival_cycle);
        if let Some(reason) = e.reason {
            j.key("reason").string(reason);
        }
        j.end_object();
        j.end_object();
    }

    j.end_array();
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) const MANIFEST: &str = r#"{
      "cluster": {
        "policy": "least-outstanding",
        "seed": 11,
        "horizon_cycles": 300000,
        "max_jobs": 5000,
        "max_outstanding": 8,
        "max_backlog_cycles": 200000,
        "workers": 2,
        "shards": [
          {"name": "bsc0", "kind": "bsc", "quick": true},
          {"name": "lpc0", "kind": "lpc", "quick": true, "mem": "edge"},
          {"name": "hps0", "kind": "hps", "quick": true, "mem": "edge",
           "bandwidth_bytes_per_cycle": 64}
        ]
      },
      "tenants": {
        "gold": {"latency_p99_cycles": 100000, "min_goodput": 0.5},
        "strict": {"latency_p99_cycles": 1, "min_goodput": 1.0}
      },
      "sources": [
        {"name": "steady", "network": "micro", "tenant": "gold",
         "deadline_cycles": 100000,
         "arrivals": {"process": "poisson", "mean_interarrival_cycles": 400}},
        {"name": "burst", "network": "micro", "tenant": "strict", "precision": "int8",
         "arrivals": {"process": "bursty", "on_cycles": 4000, "off_cycles": 16000,
                      "mean_interarrival_cycles": 150}},
        {"name": "tide", "network": "micro",
         "arrivals": {"process": "diurnal", "segments": [
            {"duration_cycles": 50000, "mean_interarrival_cycles": 300},
            {"duration_cycles": 50000, "mean_interarrival_cycles": 3000}]}}
      ]
    }"#;

    #[test]
    fn manifest_parses_heterogeneous_shards_and_processes() {
        let config = parse_online_manifest(MANIFEST).unwrap();
        assert_eq!(config.shards.len(), 3);
        assert_eq!(config.shards[0].accel.kind, MacKind::Bsc);
        assert!(config.shards[0].accel.mem.is_infinite_bandwidth());
        assert!(!config.shards[1].accel.mem.is_infinite_bandwidth());
        assert_ne!(config.shards[1].accel.mem, config.shards[2].accel.mem);
        assert_eq!(config.sources.len(), 3);
        assert!(matches!(config.sources[0].process, ArrivalProcess::Poisson { .. }));
        assert!(matches!(config.sources[1].process, ArrivalProcess::Bursty { .. }));
        assert!(matches!(config.sources[2].process, ArrivalProcess::Diurnal { .. }));
        assert_eq!(config.sources[0].template.tenant.as_str(), "gold");
        assert!(config.sources[0].template.slo.is_some());
        assert!(config.sources[2].template.slo.is_none());
    }

    #[test]
    fn malformed_online_manifests_are_rejected_with_context() {
        assert!(parse_online_manifest("{}").unwrap_err().contains("cluster"));
        let bad = MANIFEST.replace("least-outstanding", "random");
        assert!(parse_online_manifest(&bad).unwrap_err().contains("policy"));
        let bad = MANIFEST.replace("\"process\": \"poisson\"", "\"process\": \"weibull\"");
        assert!(parse_online_manifest(&bad).unwrap_err().contains("weibull"));
        let bad = MANIFEST.replace("micro", "alexnet");
        assert!(parse_online_manifest(&bad).unwrap_err().contains("alexnet"));
    }

    #[test]
    fn online_exports_are_worker_count_independent_and_strict_json() {
        let runs: Vec<OnlineRun> =
            [Some(1), Some(2), Some(8)].into_iter().map(|w| online(MANIFEST, w).unwrap()).collect();
        assert!(runs[0].report.submitted > 100);
        assert!(runs[0].report.completed > 0);
        let reports: Vec<String> = runs.iter().map(report_json).collect();
        let slos: Vec<String> = runs.iter().map(slo_json).collect();
        let events: Vec<String> = runs.iter().map(events_jsonl).collect();
        let traces: Vec<String> = runs.iter().map(perfetto_json).collect();
        for i in 1..runs.len() {
            assert_eq!(reports[0], reports[i], "report differs at worker set {i}");
            assert_eq!(slos[0], slos[i], "slo differs at worker set {i}");
            assert_eq!(events[0], events[i], "events differ at worker set {i}");
            assert_eq!(traces[0], traces[i], "trace differs at worker set {i}");
        }
        bsc_telemetry::parse_json(&reports[0]).expect("report is strict JSON");
        bsc_telemetry::parse_json(&slos[0]).expect("slo is strict JSON");
        bsc_telemetry::parse_json(&traces[0]).expect("trace is strict JSON");
        for line in events[0].lines() {
            bsc_telemetry::parse_json(line).expect("event lines are strict JSON");
        }
    }

    #[test]
    fn perfetto_groups_one_process_per_shard() {
        let run = online(MANIFEST, Some(2)).unwrap();
        let doc = bsc_telemetry::parse_json(&perfetto_json(&run)).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let processes: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("M")
                    && e.get("name").and_then(|v| v.as_str()) == Some("process_name")
            })
            .map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str()).unwrap())
            .collect();
        assert_eq!(processes, vec!["shard bsc0", "shard lpc0", "shard hps0"]);
        // Every slice lands in a declared process.
        for e in events.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")) {
            let pid = e.get("pid").and_then(|v| v.as_f64()).unwrap();
            assert!((1.0..=3.0).contains(&pid));
        }
    }

    #[test]
    fn manifest_event_log_cap_flows_into_the_run() {
        let capped = MANIFEST.replace("\"seed\": 11,", "\"seed\": 11, \"event_log_cap\": 7,");
        let config = parse_online_manifest(&capped).unwrap();
        assert_eq!(config.event_log_cap, 7);
        let run = online(&capped, Some(1)).unwrap();
        assert_eq!(run.report.events.len(), 7);
        assert_eq!(run.report.events_truncated, run.report.submitted - 7);
        // The drop count surfaces in the render output and the report.
        let text = render(&run);
        assert!(
            text.contains(&format!(
                "event log: first 7 decisions kept, {} truncated",
                run.report.events_truncated
            )),
            "{text}"
        );
        let doc = bsc_telemetry::parse_json(&report_json(&run)).unwrap();
        let truncated = doc
            .get("counters")
            .and_then(|c| c.get("engine.decision_log.truncated"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(truncated as u64, run.report.events_truncated);
        // The default cap keeps every decision of this small manifest.
        assert_eq!(parse_online_manifest(MANIFEST).unwrap().event_log_cap, EVENT_LOG_CAP);
    }

    #[test]
    fn report_json_carries_funnel_and_depth_sections() {
        let run = online(MANIFEST, Some(2)).unwrap();
        let doc = bsc_telemetry::parse_json(&report_json(&run)).unwrap();
        let funnel = doc.get("funnel").and_then(|v| v.as_array()).unwrap();
        assert_eq!(funnel.len(), 3);
        for f in funnel {
            let n = |k: &str| f.get(k).and_then(|v| v.as_f64()).unwrap() as u64;
            assert_eq!(
                n("offered"),
                n("queue_full") + n("overloaded") + n("deadline_infeasible")
                    + n("shed_deadline") + n("dispatched")
            );
        }
        let depth = doc.get("depth").unwrap();
        let stride = depth.get("stride_cycles").and_then(|v| v.as_f64()).unwrap() as u64;
        assert!(stride.is_power_of_two());
        let shards = depth.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(shards.len(), 3);
        for s in shards {
            let series = s.get("series").and_then(|v| v.as_array()).unwrap();
            assert_eq!(
                series.len() as f64,
                s.get("samples").and_then(|v| v.as_f64()).unwrap()
            );
            assert!(!series.is_empty());
        }
        // Per-shard high-water marks ride in the shard objects.
        for s in doc.get("shards").and_then(|v| v.as_array()).unwrap() {
            assert!(s.get("peak_outstanding").is_some());
            assert!(s.get("peak_backlog_cycles").is_some());
        }
    }

    #[test]
    fn perfetto_depth_counter_tracks_cover_every_shard() {
        let run = online(MANIFEST, Some(2)).unwrap();
        let doc = bsc_telemetry::parse_json(&perfetto_json(&run)).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let mut counter_pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
            .map(|e| e.get("pid").and_then(|v| v.as_f64()).unwrap() as u64)
            .collect();
        counter_pids.sort_unstable();
        counter_pids.dedup();
        assert_eq!(counter_pids, vec![1, 2, 3], "one counter track per shard");
    }

    #[test]
    fn profiled_online_counters_match_the_report() {
        let prof = Profiler::new();
        let run = online_profiled(MANIFEST, Some(2), Some(&prof)).unwrap();
        let snap = prof.snapshot();
        assert_eq!(
            snap.phase("admission").unwrap().counter("offered"),
            run.report.submitted
        );
        assert_eq!(
            snap.phase("slo-fold").unwrap().counter("observations"),
            run.report.submitted
        );
        assert!(snap.phase("schedule-eval").unwrap().counter("pairs_evaluated") > 0);
    }

    #[test]
    fn render_names_every_shard_and_tenant() {
        let run = online(MANIFEST, Some(2)).unwrap();
        let text = render(&run);
        for shard in ["bsc0", "lpc0", "hps0"] {
            assert!(text.contains(shard), "{text}");
        }
        for tenant in ["gold", "strict", "default"] {
            assert!(text.contains(tenant), "{text}");
        }
    }
}
