//! `repro mem`: memory-hierarchy sweep over buffer size, DRAM bandwidth
//! and precision for all three MAC architectures.
//!
//! Every point runs [`schedule_conv_with_memory`] — the tiled,
//! double-buffered DMA schedule — on a Table-I-style layer set and
//! records total/stall cycles, DMA traffic and the roofline
//! classification.  The sweep is purely analytic (no gate-level
//! characterization), so it is deterministic and cheap enough to gate in
//! CI: `scripts/ci.sh` regenerates `BENCH_mem_baseline.json` and diffs it
//! at zero tolerance, then asserts the sweep still contains both
//! bandwidth-bound and compute-bound layers.

use bsc_mac::{MacKind, Precision};
use bsc_systolic::mapping::ConvShape;
use bsc_systolic::{schedule_conv_with_memory, ArrayConfig, DramBandwidth, MemConfig, SystolicError};
use bsc_telemetry::JsonBuilder;

/// Buffer-size scales swept: multiples of the edge-class
/// [`MemConfig::edge`] buffers (64/128/64 KiB).
const BUFFER_SCALES: &[(u64, &str)] = &[(1, "edge-1x"), (4, "edge-4x")];

/// DRAM bandwidths swept, bytes per cycle (`0` = infinite).
const BANDWIDTHS: &[u64] = &[4, 16, 64, 0];

/// One memory-sweep sample: a layer on one `(kind, precision, buffers,
/// bandwidth)` configuration.
#[derive(Debug, Clone)]
pub struct MemSweepPoint {
    /// MAC architecture of the array.
    pub kind: MacKind,
    /// Operand precision.
    pub precision: Precision,
    /// Layer tag (see [`sweep_layers`]).
    pub layer: &'static str,
    /// Buffer-scale tag (see [`BUFFER_SCALES`]).
    pub buffers: &'static str,
    /// DRAM bandwidth in bytes/cycle (`0` = infinite).
    pub bytes_per_cycle: u64,
    /// Compute-only schedule cycles (stall-free floor).
    pub compute_cycles: u64,
    /// Stall-inclusive cycles (compute + DMA stalls + drain).
    pub total_cycles: u64,
    /// Cycles the array waited on DMA (fill + inter-tile stalls + drain).
    pub stall_cycles: u64,
    /// DRAM traffic in bytes (loads + stores).
    pub dma_bytes: u64,
    /// `"compute-bound"` or `"bandwidth-bound"`.
    pub roofline: &'static str,
    /// Achieved fraction of the array's peak MAC throughput.
    pub peak_fraction: f64,
    /// Feature-buffer residency class the tiler picked.
    pub feature_reuse: &'static str,
}

/// The Table-I-style layer set the sweep runs: an early wide-spatial
/// layer, a mid-network layer, and a late channel-heavy layer.
pub fn sweep_layers() -> Vec<(&'static str, ConvShape)> {
    vec![
        ("early-64c-56x56", ConvShape::conv(64, 64, 56, 56, 3, 1, 1)),
        ("mid-128c-28x28", ConvShape::conv(128, 256, 28, 28, 3, 1, 1)),
        ("late-512c-7x7", ConvShape::conv(512, 512, 7, 7, 3, 1, 1)),
    ]
}

fn mem_config(scale: u64, bytes_per_cycle: u64) -> MemConfig {
    let edge = MemConfig::edge();
    let bw = if bytes_per_cycle == 0 {
        DramBandwidth::Infinite
    } else {
        DramBandwidth::BytesPerCycle(bytes_per_cycle)
    };
    MemConfig {
        weight_buffer_bytes: edge.weight_buffer_bytes * scale,
        feature_buffer_bytes: edge.feature_buffer_bytes * scale,
        output_buffer_bytes: edge.output_buffer_bytes * scale,
        bandwidth: bw,
        ..edge
    }
}

/// Runs the full sweep on the paper-faithful 32-PE × L32 array.
///
/// # Errors
///
/// Propagates mapping failures (none occur for the built-in layer set).
pub fn sweep() -> Result<Vec<MemSweepPoint>, SystolicError> {
    let layers = sweep_layers();
    let mut points = Vec::new();
    for kind in MacKind::ALL {
        let array = ArrayConfig::paper(kind);
        for p in Precision::ALL {
            for &(scale, buffers) in BUFFER_SCALES {
                for &bw in BANDWIDTHS {
                    let mem = mem_config(scale, bw);
                    for (layer, shape) in &layers {
                        let aware = schedule_conv_with_memory(&array, &mem, p, shape)?;
                        points.push(MemSweepPoint {
                            kind,
                            precision: p,
                            layer,
                            buffers,
                            bytes_per_cycle: bw,
                            compute_cycles: aware.compute.cycles,
                            total_cycles: aware.total_cycles,
                            stall_cycles: aware.stall_cycles + aware.drain_cycles,
                            dma_bytes: aware.dma_bytes(),
                            roofline: aware.roofline.tag(),
                            peak_fraction: aware.peak_fraction,
                            feature_reuse: aware.feature_reuse.tag(),
                        });
                    }
                }
            }
        }
    }
    Ok(points)
}

/// Aligned-text view: one block per `(kind, precision)`, one row per
/// `(buffers, bandwidth, layer)` with the stall share and roofline side.
pub fn render(points: &[MemSweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "memory-hierarchy sweep: {} points ({} layers x {} buffer scales x {} bandwidths x kinds x precisions)",
        points.len(),
        sweep_layers().len(),
        BUFFER_SCALES.len(),
        BANDWIDTHS.len(),
    );
    let mut header: Option<(MacKind, Precision)> = None;
    for pt in points {
        if header != Some((pt.kind, pt.precision)) {
            header = Some((pt.kind, pt.precision));
            let _ = writeln!(out, "\n{} @ int{}:", pt.kind, pt.precision.bits());
            let _ = writeln!(
                out,
                "  {:<18} {:<8} {:>6}  {:>12} {:>12} {:>7}  {:>10}  {:<15} reuse",
                "layer", "buffers", "B/cyc", "cycles", "stalls", "stall%", "DMA MiB", "roofline"
            );
        }
        let bw = if pt.bytes_per_cycle == 0 {
            "inf".to_string()
        } else {
            pt.bytes_per_cycle.to_string()
        };
        let _ = writeln!(
            out,
            "  {:<18} {:<8} {:>6}  {:>12} {:>12} {:>6.1}%  {:>10.2}  {:<15} {}",
            pt.layer,
            pt.buffers,
            bw,
            pt.total_cycles,
            pt.stall_cycles,
            100.0 * pt.stall_cycles as f64 / pt.total_cycles.max(1) as f64,
            pt.dma_bytes as f64 / (1024.0 * 1024.0),
            pt.roofline,
            pt.feature_reuse,
        );
    }
    out
}

/// CSV view of the sweep (one row per point), for plotting.
pub fn to_csv(points: &[MemSweepPoint]) -> String {
    let mut out = String::from(
        "kind,precision_bits,layer,buffers,bytes_per_cycle,compute_cycles,total_cycles,stall_cycles,dma_bytes,roofline,feature_reuse,peak_fraction\n",
    );
    for pt in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}\n",
            pt.kind,
            pt.precision.bits(),
            pt.layer,
            pt.buffers,
            pt.bytes_per_cycle,
            pt.compute_cycles,
            pt.total_cycles,
            pt.stall_cycles,
            pt.dma_bytes,
            pt.roofline,
            pt.feature_reuse,
            pt.peak_fraction,
        ));
    }
    out
}

/// Machine-readable sweep report for the CI baseline gate.  Every field
/// is cycle- or byte-domain and therefore deterministic; the checked-in
/// `BENCH_mem_baseline.json` is diffed at `--tol 0`.
pub fn to_json(points: &[MemSweepPoint]) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("benchmark").string("memory_hierarchy");
    j.key("unit").string("cycles");
    j.key("bandwidth_bound_points")
        .u64(points.iter().filter(|p| p.roofline == "bandwidth-bound").count() as u64);
    j.key("compute_bound_points")
        .u64(points.iter().filter(|p| p.roofline == "compute-bound").count() as u64);
    j.key("points").begin_array();
    for pt in points {
        j.begin_object();
        j.key("kind").string(&pt.kind.to_string());
        j.key("precision_bits").u64(u64::from(pt.precision.bits()));
        j.key("layer").string(pt.layer);
        j.key("buffers").string(pt.buffers);
        j.key("bytes_per_cycle").u64(pt.bytes_per_cycle);
        j.key("compute_cycles").u64(pt.compute_cycles);
        j.key("total_cycles").u64(pt.total_cycles);
        j.key("stall_cycles").u64(pt.stall_cycles);
        j.key("dma_bytes").u64(pt.dma_bytes);
        j.key("roofline").string(pt.roofline);
        j.key("feature_reuse").string(pt.feature_reuse);
        j.key("peak_fraction").f64(pt.peak_fraction);
        j.end_object();
    }
    j.end_array();
    j.end_object();
    let mut s = j.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_roofline_sides() {
        let points = sweep().unwrap();
        let expected =
            MacKind::ALL.len() * Precision::ALL.len() * BUFFER_SCALES.len() * BANDWIDTHS.len() * 3;
        assert_eq!(points.len(), expected);
        assert!(points.iter().any(|p| p.roofline == "bandwidth-bound"));
        assert!(points.iter().any(|p| p.roofline == "compute-bound"));
        // Infinite bandwidth is always stall-free and compute-bound;
        // finite buffers may still add chunk pipeline-refill cycles on
        // top of the untiled compute floor.
        for pt in points.iter().filter(|p| p.bytes_per_cycle == 0) {
            assert_eq!(pt.stall_cycles, 0, "{pt:?}");
            assert!(pt.total_cycles >= pt.compute_cycles, "{pt:?}");
            assert_eq!(pt.roofline, "compute-bound");
        }
    }

    #[test]
    fn reports_are_deterministic_and_well_formed() {
        let a = sweep().unwrap();
        let b = sweep().unwrap();
        assert_eq!(to_json(&a), to_json(&b));
        let doc = bsc_telemetry::parse_json(&to_json(&a)).expect("valid JSON");
        assert!(
            doc.get("bandwidth_bound_points").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0
        );
        let text = render(&a);
        assert!(text.contains("bandwidth-bound"), "{text}");
        let csv = to_csv(&a);
        assert_eq!(csv.lines().count(), a.len() + 1);
    }
}
