//! Drivers regenerating every table and figure of the paper's evaluation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bsc_mac::ppa::{paper_period_sweep_ps, PpaError};
use bsc_mac::{MacKind, Precision};
use bsc_nn::models;
use bsc_systolic::energy::ArrayEnergyModel;
use bsc_systolic::mapping::schedule_conv;
use bsc_systolic::ArrayConfig;

use crate::Workbench;

/// Clock period used for the array-level experiments (the sweep's
/// best-efficiency point).
pub const ARRAY_PERIOD_PS: f64 = 2400.0;

/// One operating point of the Fig. 7 clock-period sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Design under test.
    pub kind: MacKind,
    /// Precision mode.
    pub precision: Precision,
    /// Clock period in ps.
    pub period_ps: f64,
    /// Total power in mW.
    pub total_power_mw: f64,
    /// Energy per MAC in fJ.
    pub energy_per_mac_fj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_w: f64,
    /// Area efficiency in TOPS/mm².
    pub tops_per_mm2: f64,
}

/// Runs the paper's 0.8–2.4 ns sweep over every design × mode
/// (Fig. 7a and 7b share this data).  Infeasible points (tighter than the
/// effort model can close) are skipped, mirroring a failed timing run.
pub fn fig7_sweep(wb: &Workbench) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for kind in MacKind::ALL {
        let design = wb.design(kind);
        for p in Precision::ALL {
            for &t in &paper_period_sweep_ps() {
                if let Ok(r) = design.at_period(p, t) {
                    points.push(SweepPoint {
                        kind,
                        precision: p,
                        period_ps: t,
                        total_power_mw: r.total_power_mw(),
                        energy_per_mac_fj: r.energy_per_mac_fj,
                        tops_per_w: r.tops_per_w,
                        tops_per_mm2: r.tops_per_mm2,
                    });
                }
            }
        }
    }
    points
}

/// Renders Fig. 7(a): energy (per MAC) and power versus clock period.
pub fn render_fig7a(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 7(a) — energy vs delay (clock period sweep 0.8..2.4 ns)");
    let _ = writeln!(
        out,
        "{:<6} {:<7} {:>10} {:>12} {:>14}",
        "design", "mode", "period ps", "power mW", "energy fJ/MAC"
    );
    for pt in points {
        let _ = writeln!(
            out,
            "{:<6} {:<7} {:>10.0} {:>12.3} {:>14.2}",
            pt.kind.to_string(),
            pt.precision.to_string(),
            pt.period_ps,
            pt.total_power_mw,
            pt.energy_per_mac_fj
        );
    }
    // The paper's headline observation on this figure.
    let power_at = |kind: MacKind, p: Precision| {
        points
            .iter()
            .find(|x| x.kind == kind && x.precision == p && x.period_ps == 2000.0)
            .map(|x| x.total_power_mw)
    };
    if let (Some(b), Some(l)) = (power_at(MacKind::Bsc, Precision::Int2), power_at(MacKind::Lpc, Precision::Int2)) {
        let _ = writeln!(
            out,
            "\n2-bit power at 500 MHz: BSC {b:.3} mW vs LPC {l:.3} mW ({:.0}% lower; paper: 50% lower)",
            100.0 * (1.0 - b / l)
        );
    }
    out
}

/// Renders Fig. 7(b): energy efficiency versus area efficiency.
pub fn render_fig7b(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 7(b) — energy efficiency vs area efficiency");
    let _ = writeln!(
        out,
        "{:<6} {:<7} {:>10} {:>12} {:>14}",
        "design", "mode", "period ps", "TOPS/W", "TOPS/mm2"
    );
    for pt in points {
        let _ = writeln!(
            out,
            "{:<6} {:<7} {:>10.0} {:>12.2} {:>14.2}",
            pt.kind.to_string(),
            pt.precision.to_string(),
            pt.period_ps,
            pt.tops_per_w,
            pt.tops_per_mm2
        );
    }
    out
}

/// One cell of Fig. 8(a): a design's maximum vector-level energy
/// efficiency in one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxEfficiency {
    /// Design under test.
    pub kind: MacKind,
    /// Precision mode.
    pub precision: Precision,
    /// Best energy efficiency over the sweep, TOPS/W.
    pub tops_per_w: f64,
    /// Period at which the best point occurs, ps.
    pub period_ps: f64,
}

/// Maximum vector-level energy efficiency per design × mode (Fig. 8a).
///
/// # Errors
///
/// Propagates analysis failures when no sweep point is feasible.
pub fn fig8a(wb: &Workbench) -> Result<Vec<MaxEfficiency>, PpaError> {
    let sweep = paper_period_sweep_ps();
    let mut rows = Vec::new();
    for kind in MacKind::ALL {
        for p in Precision::ALL {
            let best = wb.design(kind).best_efficiency(p, &sweep)?;
            rows.push(MaxEfficiency {
                kind,
                precision: p,
                tops_per_w: best.tops_per_w,
                period_ps: best.period_ps,
            });
        }
    }
    Ok(rows)
}

fn eff_of(rows: &[MaxEfficiency], kind: MacKind, p: Precision) -> f64 {
    rows.iter()
        .find(|r| r.kind == kind && r.precision == p)
        .map_or(f64::NAN, |r| r.tops_per_w)
}

/// Renders Fig. 8(a) with the BSC-versus-baseline ratios the paper quotes.
pub fn render_fig8a(rows: &[MaxEfficiency]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 8(a) — max vector energy efficiency (TOPS/W)");
    let _ = writeln!(out, "{:<7} {:>10} {:>10} {:>10}", "mode", "BSC", "LPC", "HPS");
    for p in Precision::ALL {
        let _ = writeln!(
            out,
            "{:<7} {:>10.2} {:>10.2} {:>10.2}",
            p.to_string(),
            eff_of(rows, MacKind::Bsc, p),
            eff_of(rows, MacKind::Lpc, p),
            eff_of(rows, MacKind::Hps, p)
        );
    }
    let _ = writeln!(out, "\nratios (paper: vs LPC 1.24x @2b, ~2x @4b/8b; vs HPS ~1.6x @2b/4b)");
    for p in Precision::ALL {
        let b = eff_of(rows, MacKind::Bsc, p);
        let _ = writeln!(
            out,
            "{:<7} BSC/LPC {:>5.2}x   BSC/HPS {:>5.2}x",
            p.to_string(),
            b / eff_of(rows, MacKind::Lpc, p),
            b / eff_of(rows, MacKind::Hps, p)
        );
    }
    out
}

/// One cell of Fig. 8(b): the array's steady-state efficiency in one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayEfficiency {
    /// Design under test.
    pub kind: MacKind,
    /// Precision mode.
    pub precision: Precision,
    /// Steady-state array energy efficiency, TOPS/W.
    pub tops_per_w: f64,
    /// Array throughput, TOPS.
    pub tops: f64,
}

/// Vector systolic PE-array energy efficiency per design × mode at the
/// best weight-stationary operating point (Fig. 8b).
///
/// # Errors
///
/// Propagates analysis failures when no sweep point is feasible.
pub fn fig8b(wb: &Workbench) -> Result<Vec<ArrayEfficiency>, PpaError> {
    let sweep = paper_period_sweep_ps();
    let mut rows = Vec::new();
    for kind in MacKind::ALL {
        let config = ArrayConfig { pes: 32, vector_length: wb.vector_length(), kind };
        for p in Precision::ALL {
            let unit = wb.design(kind).best_efficiency_weight_stationary(p, &sweep)?;
            let model = ArrayEnergyModel::new(unit, config);
            rows.push(ArrayEfficiency {
                kind,
                precision: p,
                tops_per_w: model.steady_state_tops_per_w(),
                tops: model.steady_state_tops(),
            });
        }
    }
    Ok(rows)
}

/// Renders Fig. 8(b) next to the paper's BSC array numbers.
pub fn render_fig8b(rows: &[ArrayEfficiency]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8(b) — vector systolic PE array energy efficiency (TOPS/W)\n(paper BSC array: 33.25 @2b, 13.77 @4b)"
    );
    let _ = writeln!(out, "{:<7} {:>10} {:>10} {:>10}", "mode", "BSC", "LPC", "HPS");
    for p in Precision::ALL {
        let get = |k: MacKind| {
            rows.iter()
                .find(|r| r.kind == k && r.precision == p)
                .map_or(f64::NAN, |r| r.tops_per_w)
        };
        let _ = writeln!(
            out,
            "{:<7} {:>10.2} {:>10.2} {:>10.2}",
            p.to_string(),
            get(MacKind::Bsc),
            get(MacKind::Lpc),
            get(MacKind::Hps)
        );
    }
    out
}

/// One bar of Fig. 9: a benchmark network's average efficiency on one
/// design's array.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkEfficiency {
    /// Benchmark network name.
    pub network: String,
    /// Design under test.
    pub kind: MacKind,
    /// Network-average energy efficiency by the paper's methodology
    /// (weight-fraction-weighted mean of the per-mode array efficiencies),
    /// TOPS/W.
    pub tops_per_w: f64,
    /// Network-average efficiency from the full layer-by-layer Fig. 6
    /// mapping (tiling, fill bubbles and gated lanes included) — this
    /// reproduction's more detailed extension of the paper's number.
    pub mapped_tops_per_w: f64,
    /// Inference latency at the operating clock (mapped schedule), ms.
    pub latency_ms: f64,
    /// Cycle-weighted array utilization (mapped schedule).
    pub utilization: f64,
}

/// Average energy efficiency of the multi-precision CNN benchmarks on all
/// three arrays (Fig. 9).
///
/// The headline number follows the paper's methodology: Fig. 9's values
/// are the Table-I weight fractions applied to the Fig. 8(b) per-mode
/// array efficiencies (the paper's LeNet-5 value 22.54 is exactly
/// `0.55 × 13.77 + 0.45 × 33.25`).  The mapped column re-derives the
/// average from a full per-layer schedule instead.
///
/// # Errors
///
/// Propagates mapping and analysis failures.
pub fn fig9(wb: &Workbench) -> Result<Vec<BenchmarkEfficiency>, PpaError> {
    let fig8b_rows = fig8b(wb)?;
    let mut rows = Vec::new();
    for net in models::table1_benchmarks() {
        for kind in MacKind::ALL {
            let dist = net.precision_distribution();
            let paper_method: f64 = Precision::ALL
                .into_iter()
                .map(|p| {
                    let eff = fig8b_rows
                        .iter()
                        .find(|r| r.kind == kind && r.precision == p)
                        .map_or(0.0, |r| r.tops_per_w);
                    dist.fraction(p) * eff
                })
                .sum();
            let config = ArrayConfig { pes: 32, vector_length: wb.vector_length(), kind };
            // Cache one energy model per precision actually used.
            let mut model_cache: BTreeMap<Precision, ArrayEnergyModel> = BTreeMap::new();
            let mut energy_fj = 0.0;
            let mut macs = 0u64;
            let mut cycles = 0u64;
            let mut util_weighted = 0.0;
            for layer in &net.layers {
                let model = match model_cache.get(&layer.precision) {
                    Some(m) => m.clone(),
                    None => {
                        let unit = wb
                            .design(kind)
                            .at_period_weight_stationary(layer.precision, ARRAY_PERIOD_PS)?;
                        let m = ArrayEnergyModel::new(unit, config);
                        model_cache.insert(layer.precision, m.clone());
                        m
                    }
                };
                let shape = bsc_accel::layer_to_conv_shape(&layer.kind);
                let s = schedule_conv(&config, layer.precision, &shape)
                    .expect("benchmark layer shapes are non-empty");
                energy_fj += model.schedule_energy_fj(&s);
                macs += s.useful_macs;
                cycles += s.cycles;
                util_weighted += s.utilization * s.cycles as f64;
            }
            rows.push(BenchmarkEfficiency {
                network: net.name.clone(),
                kind,
                tops_per_w: paper_method,
                mapped_tops_per_w: 2.0e3 * macs as f64 / energy_fj,
                latency_ms: cycles as f64 * ARRAY_PERIOD_PS * 1e-9,
                utilization: if cycles > 0 { util_weighted / cycles as f64 } else { 0.0 },
            });
        }
    }
    Ok(rows)
}

/// The paper's Fig. 9 published values: (network, BSC, ratio vs LPC,
/// ratio vs HPS).
pub const FIG9_PAPER: [(&str, f64, f64, f64); 4] = [
    ("VGG-16", 12.75, 2.17, 1.43),
    ("LeNet-5", 22.54, 1.61, 1.47),
    ("ResNet-18", 13.22, 2.18, 1.45),
    ("NAS-Based", 16.04, 1.75, 1.43),
];

/// Renders Fig. 9 next to the paper's values and ratios.
pub fn render_fig9(rows: &[BenchmarkEfficiency]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 9 — average energy efficiency on NAS multi-precision CNNs (TOPS/W)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}  {:>9} {:>9}   {:>22}",
        "network", "BSC", "LPC", "HPS", "BSC/LPC", "BSC/HPS", "paper BSC (vsLPC,vsHPS)"
    );
    for &(name, p_bsc, p_lpc_ratio, p_hps_ratio) in &FIG9_PAPER {
        let get = |k: MacKind| {
            rows.iter()
                .find(|r| r.network == name && r.kind == k)
                .map_or(f64::NAN, |r| r.tops_per_w)
        };
        let (b, l, h) = (get(MacKind::Bsc), get(MacKind::Lpc), get(MacKind::Hps));
        let _ = writeln!(
            out,
            "{:<10} {:>8.2} {:>8.2} {:>8.2}  {:>8.2}x {:>8.2}x   {:>6.2} ({:>4.2}x, {:>4.2}x)",
            name,
            b,
            l,
            h,
            b / l,
            b / h,
            p_bsc,
            p_lpc_ratio,
            p_hps_ratio
        );
    }
    let _ = writeln!(
        out,
        "
extension: full Fig. 6 layer mapping (tiling, fill bubbles, gated lanes)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}  {:>12} {:>10}",
        "network", "BSC", "LPC", "HPS", "BSC util", "BSC ms"
    );
    for &(name, ..) in &FIG9_PAPER {
        let get = |k: MacKind| rows.iter().find(|r| r.network == name && r.kind == k);
        let (b, l, h) = (get(MacKind::Bsc), get(MacKind::Lpc), get(MacKind::Hps));
        if let (Some(b), Some(l), Some(h)) = (b, l, h) {
            let _ = writeln!(
                out,
                "{:<10} {:>8.2} {:>8.2} {:>8.2}  {:>11.1}% {:>10.2}",
                name,
                b.mapped_tops_per_w,
                l.mapped_tops_per_w,
                h.mapped_tops_per_w,
                100.0 * b.utilization,
                b.latency_ms
            );
        }
    }
    out
}

/// Renders Table I (delegates to `bsc-nn`).
pub fn render_table1() -> String {
    format!("Table I — NAS-based multi-precision CNN benchmarks\n{}", bsc_nn::report::render_table1())
}

/// Serializes the Fig. 7 sweep as CSV (`design,mode,period_ps,...`).
pub fn fig7_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "design,mode_bits,period_ps,total_power_mw,energy_per_mac_fj,tops_per_w,tops_per_mm2\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            p.kind, p.precision.bits(), p.period_ps, p.total_power_mw,
            p.energy_per_mac_fj, p.tops_per_w, p.tops_per_mm2
        );
    }
    out
}

/// Serializes Fig. 8(a) as CSV.
pub fn fig8a_csv(rows: &[MaxEfficiency]) -> String {
    let mut out = String::from("design,mode_bits,tops_per_w,period_ps\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{},{}", r.kind, r.precision.bits(), r.tops_per_w, r.period_ps);
    }
    out
}

/// Serializes Fig. 8(b) as CSV.
pub fn fig8b_csv(rows: &[ArrayEfficiency]) -> String {
    let mut out = String::from("design,mode_bits,tops_per_w,tops\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{},{}", r.kind, r.precision.bits(), r.tops_per_w, r.tops);
    }
    out
}

/// Serializes Fig. 9 as CSV.
pub fn fig9_csv(rows: &[BenchmarkEfficiency]) -> String {
    let mut out =
        String::from("network,design,tops_per_w,mapped_tops_per_w,latency_ms,utilization\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.network, r.kind, r.tops_per_w, r.mapped_tops_per_w, r.latency_ms, r.utilization
        );
    }
    out
}

/// Serializes Table I as CSV.
pub fn table1_csv() -> String {
    let mut out = String::from("cnn,dataset,model_mbytes,frac8,frac4,frac2\n");
    for r in bsc_nn::report::table1() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.cnn, r.dataset, r.model_mbytes, r.frac8, r.frac4, r.frac2
        );
    }
    out
}

/// Gate-level variant of Fig. 8(b): instead of scaling a per-unit report
/// analytically, builds the *full array netlist* (feature pipeline, weight
/// buffers with load enables, one datapath per PE), characterizes it with
/// weight-stationary stimulus, and measures TOPS/W directly.
///
/// Steady-state per-MAC efficiency is independent of the PE count (each PE
/// adds the same logic and the same work), so `pes` may be smaller than 32
/// for tractability; the unit test
/// `analytic_array_model_tracks_gate_level_array` pins the two models
/// against each other.
///
/// # Errors
///
/// Propagates gate-level simulation and analysis failures.
pub fn fig8b_gate_level(
    pes: usize,
    vector_length: usize,
    steps: usize,
) -> Result<Vec<ArrayEfficiency>, PpaError> {
    let lib = bsc_synth::CellLibrary::smic28_like();
    let effort = bsc_synth::EffortModel::default();
    let mut rows = Vec::new();
    for kind in MacKind::ALL {
        let array = bsc_systolic::netlist::build_array(kind, pes, vector_length);
        for p in Precision::ALL {
            let act = array
                .characterize_weight_stationary(p, steps, 0xF18B ^ p.bits() as u64)
                .map_err(bsc_mac::ppa::PpaError::from)?;
            let macs = (pes * array.dot_length(p)) as f64;
            let report = bsc_synth::analyze(
                array.netlist(),
                &act,
                &lib,
                &effort,
                ARRAY_PERIOD_PS,
                macs,
            )
            .map_err(bsc_mac::ppa::PpaError::from)?;
            rows.push(ArrayEfficiency {
                kind,
                precision: p,
                tops_per_w: report.tops_per_w,
                tops: report.tops,
            });
        }
    }
    Ok(rows)
}

/// Renders the gate-level Fig. 8(b) table.
pub fn render_fig8b_gate_level(rows: &[ArrayEfficiency], pes: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8(b), gate-level array netlist ({pes} PEs, measured directly)"
    );
    let _ = writeln!(out, "{:<7} {:>10} {:>10} {:>10}", "mode", "BSC", "LPC", "HPS");
    for p in Precision::ALL {
        let get = |k: MacKind| {
            rows.iter()
                .find(|r| r.kind == k && r.precision == p)
                .map_or(f64::NAN, |r| r.tops_per_w)
        };
        let _ = writeln!(
            out,
            "{:<7} {:>10.2} {:>10.2} {:>10.2}",
            p.to_string(),
            get(MacKind::Bsc),
            get(MacKind::Lpc),
            get(MacKind::Hps)
        );
    }
    out
}

/// Renders the extensions report: everything this reproduction provides
/// *beyond* the paper's scope (asymmetric modes, DVFS, SRAM hierarchy,
/// accuracy-versus-precision), each measured rather than asserted.
///
/// # Errors
///
/// Propagates characterization/analysis failures.
pub fn render_extensions() -> Result<String, Box<dyn std::error::Error>> {
    use bsc_mac::asym::AsymMode;
    use bsc_mac::lpc::LpcVector;
    use bsc_synth::voltage::{scaled_library, VoltageModel};
    use bsc_synth::{analyze, CellLibrary, EffortModel};

    let mut out = String::new();
    let lib = CellLibrary::smic28_like();
    let effort = EffortModel::default();

    // --- 1. asymmetric LPC modes (measured on the extended netlist) -----
    let _ = writeln!(out, "== asymmetric precision modes (LPC netlist extension) ==");
    let mac = LpcVector::new(4).build_netlist_asym();
    let e_at = |act: bsc_netlist::Activity, macs: f64| -> Result<f64, Box<dyn std::error::Error>> {
        Ok(analyze(mac.netlist(), &act, &lib, &effort, ARRAY_PERIOD_PS, macs)?.energy_per_mac_fj)
    };
    let mut sym = Vec::new();
    for p in Precision::ALL {
        let e = e_at(mac.characterize(p, 48, 11)?, mac.macs_per_cycle(p) as f64)?;
        let _ = writeln!(out, "{:<6} {:>3} MACs/unit/cyc {:>8.1} fJ/MAC (symmetric anchor)", p.to_string(), mac.kind().fields_per_element(p), e);
        sym.push(e);
    }
    for mode in AsymMode::ALL {
        let e = e_at(
            mac.characterize_asym(mode, 48, 13)?,
            mac.macs_per_cycle_asym(mode) as f64,
        )?;
        let est = bsc_mac::asym::estimate_energy_per_mac_fj(sym[0], sym[1], sym[2], mode)
            .expect("finite anchors");
        let _ = writeln!(
            out,
            "{:<6} {:>3} MACs/unit/cyc {:>8.1} fJ/MAC measured, {:>7.1} estimated",
            mode.to_string(),
            mode.products_per_lpc_unit(),
            e,
            est
        );
    }

    // --- 2. DVFS on the BSC vector --------------------------------------
    let _ = writeln!(out, "\n== DVFS: BSC vector across supply voltages (4-bit mode) ==");
    let bsc = bsc_mac::build_netlist(MacKind::Bsc, 8);
    let act = bsc.characterize(Precision::Int4, 48, 17)?;
    let vm = VoltageModel::smic28_like();
    let _ = writeln!(out, "{:>6} {:>12} {:>10} {:>10}", "V", "min ps", "fJ/MAC", "TOPS/W");
    for v in [0.9, 0.8, 0.7, 0.6] {
        let vlib = scaled_library(&lib, &vm, v)?;
        let min_ps = bsc_synth::timing::min_period_ps(bsc.netlist(), &vlib)?;
        let r = analyze(
            bsc.netlist(),
            &act,
            &vlib,
            &effort,
            min_ps * 1.2,
            bsc.macs_per_cycle(Precision::Int4) as f64,
        )?;
        let _ = writeln!(
            out,
            "{v:>6.2} {:>12.0} {:>10.1} {:>10.2}",
            min_ps, r.energy_per_mac_fj, r.tops_per_w
        );
    }

    // --- 3. SRAM share per benchmark (BSC array, Table-I networks) ------
    let _ = writeln!(out, "\n== SRAM hierarchy share of total energy (BSC array) ==");
    let cfg = bsc_mac::ppa::CharacterizeConfig::quick(8);
    let design = bsc_mac::ppa::DesignCharacterization::new(MacKind::Bsc, &cfg)?;
    let config = ArrayConfig { pes: 32, vector_length: 8, kind: MacKind::Bsc };
    let sram = bsc_systolic::energy::SramModel::smic28_like();
    for net in models::table1_benchmarks() {
        let mut compute = 0.0;
        let mut memory = 0.0;
        for layer in &net.layers {
            let unit = design.at_period_weight_stationary(layer.precision, ARRAY_PERIOD_PS)?;
            let model = ArrayEnergyModel::new(unit, config);
            let shape = bsc_accel::layer_to_conv_shape(&layer.kind);
            let s = schedule_conv(&config, layer.precision, &shape)
                .expect("benchmark shapes are valid");
            let b = model.schedule_energy_with_memory(&s, &sram);
            compute += b.compute_fj;
            memory += b.total_fj() - b.compute_fj;
        }
        let _ = writeln!(
            out,
            "{:<10} memory {:>5.1}% of total energy",
            net.name,
            100.0 * memory / (compute + memory)
        );
    }

    // --- 4. accuracy vs precision on the synthetic task -----------------
    let _ = writeln!(out, "\n== classification accuracy vs precision (synthetic task) ==");
    let task = bsc_nn::dataset::SyntheticTask::new(10, 1, 5, 5, 170, 2026);
    for p in [Precision::Int8, Precision::Int4, Precision::Int2] {
        let acc = task.accuracy(p, 400, 5)?;
        let _ = writeln!(out, "{:<6} weights: {:>5.1}% top-1", p.to_string(), 100.0 * acc);
    }
    Ok(out)
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_serializers_emit_headers_and_rows() {
        let pts = vec![SweepPoint {
            kind: MacKind::Bsc,
            precision: Precision::Int4,
            period_ps: 2000.0,
            total_power_mw: 1.5,
            energy_per_mac_fj: 60.0,
            tops_per_w: 30.0,
            tops_per_mm2: 4.0,
        }];
        let csv = fig7_csv(&pts);
        assert!(csv.starts_with("design,mode_bits,period_ps"));
        assert!(csv.contains("BSC,4,2000"));

        let rows = vec![MaxEfficiency {
            kind: MacKind::Hps,
            precision: Precision::Int2,
            tops_per_w: 31.2,
            period_ps: 2400.0,
        }];
        assert!(fig8a_csv(&rows).contains("HPS,2,31.2,2400"));

        let arr = vec![ArrayEfficiency {
            kind: MacKind::Lpc,
            precision: Precision::Int8,
            tops_per_w: 5.3,
            tops: 0.8,
        }];
        assert!(fig8b_csv(&arr).contains("LPC,8,5.3,0.8"));

        let bench = vec![BenchmarkEfficiency {
            network: "LeNet-5".into(),
            kind: MacKind::Bsc,
            tops_per_w: 60.9,
            mapped_tops_per_w: 9.7,
            latency_ms: 0.05,
            utilization: 0.024,
        }];
        let c = fig9_csv(&bench);
        assert!(c.contains("LeNet-5,BSC,60.9,9.7"));

        assert!(table1_csv().lines().count() == 5, "header + 4 networks");
    }

    #[test]
    fn paper_reference_values_are_consistent() {
        // The embedded Fig. 9 reference must contain the paper's headline
        // 2.18x (ResNet-18 vs LPC) and the LeNet 22.54 TOPS/W value.
        assert!(FIG9_PAPER.iter().any(|&(n, v, _, _)| n == "LeNet-5" && (v - 22.54).abs() < 1e-9));
        assert!(FIG9_PAPER.iter().any(|&(_, _, l, _)| (l - 2.18).abs() < 1e-9));
        // Fig. 9's published values equal the weight-fraction arithmetic
        // mean of the paper's Fig. 8(b) numbers for LeNet-5.
        let lenet: f64 = 0.55 * 13.77 + 0.45 * 33.25;
        assert!((lenet - 22.54).abs() < 0.01, "{lenet}");
    }

    #[test]
    fn period_sweep_constant_matches_best_point() {
        assert_eq!(ARRAY_PERIOD_PS, 2400.0);
        assert_eq!(*bsc_mac::ppa::paper_period_sweep_ps().last().unwrap(), ARRAY_PERIOD_PS);
    }
}
