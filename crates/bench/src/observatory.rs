//! The `repro trace` run observatory: an instrumented multi-layer run of
//! the tile compiler on the cycle-accurate array, reconstructed into a
//! [`Timeline`] and exported as Perfetto/Chrome trace JSON and a
//! self-contained SVG utilization heatmap.
//!
//! The same three-layer probe network as `repro telemetry` is used
//! (Int8 conv, Int4 conv, Int2 fully-connected on a 4-PE L=8 array), but
//! here the whole run shares ONE telemetry hub with a large trace ring,
//! so the timeline covers every pass of every layer and the hierarchical
//! spans (`accel`-level layer spans → `compiler.execute` →
//! `array.matmul`) land in the export's wall-clock track.

use bsc_accel::compiler::{compile_conv, execute};
use bsc_mac::MacKind;
use bsc_netlist::rng::Rng64;
use bsc_nn::ops::ConvWeights;
use bsc_nn::Tensor;
use bsc_systolic::{ArrayConfig, SystolicArray};
use bsc_telemetry::timeline::IMPLICIT_LAYER;
use bsc_telemetry::{
    build_timeline, perfetto_json, utilization_svg, SpanSnapshot, Telemetry, Timeline,
    TraceSnapshot,
};

use crate::telemetry_probe::layer_shapes;

/// Everything one observatory run produced.
#[derive(Debug)]
pub struct ObservatoryRun {
    /// MAC architecture traced.
    pub kind: MacKind,
    /// PEs in the array.
    pub pes: usize,
    /// Reconstructed cycle-domain timeline.
    pub timeline: Timeline,
    /// Wall-clock span tree of the run.
    pub spans: SpanSnapshot,
    /// Raw trace snapshot the timeline was built from.
    pub trace: TraceSnapshot,
    /// Layer names in execution order (indexed by `TileStart::layer`).
    pub layer_names: Vec<String>,
    /// Events lost to the ring bound (0 with the default capacity).
    pub dropped: u64,
}

/// Default ring capacity for [`observe`] — large enough to hold the full
/// three-layer probe run with no drops.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// Runs the instrumented probe network and reconstructs its timeline.
///
/// # Errors
///
/// Propagates compile/execute errors from the accelerator stack.
pub fn observe(
    kind: MacKind,
    trace_capacity: usize,
) -> Result<ObservatoryRun, Box<dyn std::error::Error>> {
    let config = ArrayConfig { pes: 4, vector_length: 8, kind };
    let hub = Telemetry::new(trace_capacity);
    let mut array = SystolicArray::new(config);
    array.set_telemetry(hub.clone());

    let mut layer_names = Vec::new();
    {
        let run_span = hub.spans.begin("observatory.run");
        run_span.annotate("kind", kind);
        run_span.annotate("pes", config.pes);
        for (i, (name, p, shape)) in layer_shapes().into_iter().enumerate() {
            let layer_span = hub.spans.begin(&format!("layer.{name}"));
            layer_span.annotate("index", i);
            layer_span.annotate("precision", p);
            let mut rng = Rng64::seed_from_u64(0xBE7A ^ i as u64);
            let r = p.value_range();
            let input = Tensor::random(
                shape.in_channels,
                shape.in_h,
                shape.in_w,
                r.clone(),
                7 + i as u64,
            );
            let weights = ConvWeights {
                out_c: shape.out_channels,
                in_c: shape.in_channels,
                kh: shape.kernel_h,
                kw: shape.kernel_w,
                data: (0..shape.weight_count() as usize)
                    .map(|_| rng.gen_range(r.clone()))
                    .collect(),
            };
            let program = compile_conv(&config, p, &shape)?.with_layer(i as u32);
            let (_, stats) = execute(&program, &array, &input, &weights)?;
            layer_span.annotate("passes", stats.passes);
            layer_span.annotate("cycles", stats.cycles);
            layer_names.push(name.to_string());
        }
    }

    let dropped = hub.publish_trace_stats();
    let trace = hub.trace.snapshot();
    let timeline = build_timeline(&trace);
    Ok(ObservatoryRun {
        kind,
        pes: config.pes,
        timeline,
        spans: hub.spans.snapshot(),
        trace,
        layer_names,
        dropped,
    })
}

/// The Chrome trace-event JSON of a run (the `--perfetto-out` payload).
pub fn run_perfetto_json(run: &ObservatoryRun) -> String {
    perfetto_json(&run.timeline, Some(&run.spans))
}

/// The SVG utilization heatmap of a run (the `--svg-out` payload).
pub fn run_svg(run: &ObservatoryRun) -> String {
    utilization_svg(&run.timeline)
}

/// Renders the terminal summary of a run.
pub fn render_observatory(run: &ObservatoryRun) -> String {
    let tl = &run.timeline;
    let mut out = String::new();
    out.push_str(&format!(
        "Run observatory — {} array, {} PEs ({} events, {} global cycles)\n",
        run.kind,
        run.pes,
        tl.events,
        tl.total_cycles
    ));
    if run.dropped > 0 {
        out.push_str(&format!(
            "WARNING: {} trace events dropped (ring full) — timeline is truncated;\n         \
             rerun with a larger --trace-cap for full coverage\n",
            run.dropped
        ));
    }

    out.push_str("\nlayers (cycle domain, rebased to a global clock):\n");
    out.push_str("  layer          start      end   passes\n");
    for layer in &tl.layers {
        let name = if layer.layer == IMPLICIT_LAYER {
            "untracked".to_string()
        } else {
            run.layer_names
                .get(layer.layer as usize)
                .cloned()
                .unwrap_or_else(|| format!("layer{}", layer.layer))
        };
        out.push_str(&format!(
            "  {:<12} {:>7} {:>8} {:>8}\n",
            name, layer.start, layer.end, layer.passes
        ));
    }

    out.push_str("\nper-PE occupancy:\n");
    out.push_str("  pe    busy   stall   loads   busy%\n");
    for pe in &tl.pes {
        let busy = pe.busy_cycles();
        let denom = tl.total_cycles.max(1);
        out.push_str(&format!(
            "  {:<4} {:>6} {:>7} {:>7} {:>6.1}%\n",
            format!("{:02}", pe.pe),
            busy,
            pe.stall_cycles(),
            pe.weight_loads.len(),
            busy as f64 / denom as f64 * 100.0,
        ));
    }

    out.push_str(&format!(
        "\nwall-clock spans: {} recorded (max depth {})\n",
        run.spans.spans.len(),
        run.spans
            .spans
            .iter()
            .map(|s| run.spans.depth(s.id))
            .max()
            .unwrap_or(0)
    ));
    for s in run.spans.spans.iter().take(12) {
        out.push_str(&format!(
            "  {:indent$}{} ({:.3} ms)\n",
            "",
            s.name,
            s.duration_ns() as f64 / 1e6,
            indent = 2 * run.spans.depth(s.id),
        ));
    }
    if run.spans.spans.len() > 12 {
        out.push_str(&format!("  ... {} more\n", run.spans.spans.len() - 12));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_telemetry::json::{parse_json, JsonValue};

    #[test]
    fn observatory_covers_all_layers_without_drops() {
        let run = observe(MacKind::Bsc, DEFAULT_TRACE_CAPACITY).unwrap();
        assert_eq!(run.dropped, 0);
        assert_eq!(run.layer_names, vec!["conv8", "conv4", "fc2"]);
        // All three explicit layers appear; no implicit segments since
        // nothing was dropped and every pass has its TileStart.
        let layers: Vec<u32> = run.timeline.layers.iter().map(|l| l.layer).collect();
        assert_eq!(layers, vec![0, 1, 2]);
        assert_eq!(run.timeline.pes.len(), 4);
        // Spans nest: run → layer.* → compiler.execute → array.matmul.
        assert!(run.spans.by_name("observatory.run").is_some());
        assert!(run.spans.by_name("layer.conv8").is_some());
        assert!(run.spans.by_name("compiler.execute").is_some());
        assert!(run.spans.by_name("array.matmul").is_some());
        let mm = run.spans.by_name("array.matmul").unwrap();
        assert_eq!(run.spans.depth(mm.id), 3);
        // Cycle events carry span correlation IDs.
        assert!(run.trace.event_spans.iter().any(|&s| s != bsc_telemetry::NO_SPAN));
    }

    #[test]
    fn perfetto_export_has_a_track_per_pe_and_layer_slices() {
        let run = observe(MacKind::Bsc, DEFAULT_TRACE_CAPACITY).unwrap();
        let doc = parse_json(&run_perfetto_json(&run)).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for pe in 0..run.pes {
            assert!(names.contains(&format!("PE {pe:02}").as_str()), "{names:?}");
        }
        let slices: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .filter_map(|e| e.get("name")?.as_str())
            .collect();
        for layer in 0..3 {
            assert!(slices.contains(&format!("layer {layer}").as_str()), "{slices:?}");
        }
        assert!(slices.iter().any(|n| n.starts_with("L0 pass ")));
    }

    #[test]
    fn svg_export_is_produced() {
        let run = observe(MacKind::Bsc, DEFAULT_TRACE_CAPACITY).unwrap();
        let svg = run_svg(&run);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("PE00"));
        let text = render_observatory(&run);
        assert!(text.contains("per-PE occupancy"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn tiny_ring_reports_truncation() {
        let run = observe(MacKind::Bsc, 32).unwrap();
        assert!(run.dropped > 0);
        assert!(render_observatory(&run).contains("WARNING"));
    }
}
