//! The `repro telemetry` experiment: an instrumented end-to-end run of
//! the accelerator stack that exercises every probe layer at once —
//! dataflow counters against the closed-form model (all three precision
//! modes), per-layer / per-PE utilization through the tile compiler, and
//! gate-level switching activity through the simulator's toggle probe —
//! and serializes the lot through the `bsc-telemetry` sinks.
//!
//! Unlike the figure experiments this one needs no characterized
//! workbench: it measures cycles and toggles, not energy.

use bsc_accel::compiler::{compile_conv, execute};
use bsc_mac::{MacKind, Precision};
use bsc_netlist::rng::Rng64;
use bsc_netlist::{Simulator, SIM_LANES};
use bsc_nn::ops::ConvWeights;
use bsc_nn::Tensor;
use bsc_systolic::mapping::ConvShape;
use bsc_systolic::{ArrayConfig, Matrix, SystolicArray, WeightReuse};
use bsc_telemetry::{sink, JsonBuilder, Telemetry, TraceSnapshot};

/// One single-tile matmul per precision mode, cross-checking the
/// counter-derived utilization against the analytic dataflow model.
#[derive(Debug, Clone)]
pub struct PrecisionCheck {
    /// Precision mode of the run.
    pub precision: Precision,
    /// Total cycles counted.
    pub cycles: u64,
    /// PE fire events counted.
    pub pe_fired: u64,
    /// Drain-tail stall cycles counted.
    pub stall_cycles: u64,
    /// Utilization derived from the counters: `pe_fired / (cycles × PEs)`.
    pub counted_utilization: f64,
    /// Utilization the closed-form dataflow model predicts.
    pub analytic_utilization: f64,
}

impl PrecisionCheck {
    /// Absolute error between counted and analytic utilization.
    pub fn abs_error(&self) -> f64 {
        (self.counted_utilization - self.analytic_utilization).abs()
    }
}

/// Telemetry of one layer executed through the tile compiler.
#[derive(Debug, Clone)]
pub struct LayerTelemetry {
    /// Layer name.
    pub name: String,
    /// Precision mode.
    pub precision: Precision,
    /// Total cycles over all stationary passes.
    pub cycles: u64,
    /// Stationary passes executed.
    pub passes: u64,
    /// PE fire events counted.
    pub pe_fired: u64,
    /// Drain-tail stall cycles counted.
    pub stall_cycles: u64,
    /// Whole-array utilization from the counters.
    pub utilization: f64,
    /// Busy cycles of each PE.
    pub pe_busy: Vec<u64>,
    /// Per-PE utilization (busy cycles / total cycles).
    pub pe_utilization: Vec<f64>,
}

/// Switching activity of one gate kind in the probed MAC netlist.
#[derive(Debug, Clone)]
pub struct ToggleRow {
    /// Cell name (library naming, e.g. `XOR2`).
    pub gate: String,
    /// Total bit flips recorded by the simulator probe.
    pub toggles: u64,
}

/// The full telemetry experiment result.
#[derive(Debug)]
pub struct TelemetryReport {
    /// MAC architecture probed.
    pub kind: MacKind,
    /// PEs in the probe array.
    pub pes: usize,
    /// Vector length of the probe array.
    pub vector_length: usize,
    /// Counter-vs-analytic checks, one per precision mode.
    pub checks: Vec<PrecisionCheck>,
    /// Per-layer rows of the compiled three-layer probe network.
    pub layers: Vec<LayerTelemetry>,
    /// Gate-level toggle counts of the MAC netlist testbench.
    pub toggles: Vec<ToggleRow>,
    /// Simulator evaluations behind the toggle counts.
    pub toggle_evals: u64,
    /// Full metrics snapshot of the shared experiment hub.
    pub metrics: bsc_telemetry::MetricsSnapshot,
    /// Trace snapshot of the shared experiment hub.
    pub trace: TraceSnapshot,
}

/// Tolerance for the counter-vs-analytic utilization comparison.
pub const UTILIZATION_TOLERANCE: f64 = 1e-9;

pub(crate) fn layer_shapes() -> [(&'static str, Precision, ConvShape); 3] {
    [
        ("conv8", Precision::Int8, ConvShape::conv(5, 6, 6, 6, 3, 1, 1)),
        ("conv4", Precision::Int4, ConvShape::conv(8, 4, 5, 5, 3, 1, 1)),
        ("fc2", Precision::Int2, ConvShape::fully_connected(30, 7)),
    ]
}

/// Runs the instrumented probe for one MAC architecture.
///
/// # Errors
///
/// Returns array/simulation errors, or a telemetry-divergence error when
/// counted and analytic utilization disagree beyond
/// [`UTILIZATION_TOLERANCE`] (which the array's own in-run
/// cross-validation should already have caught).
pub fn telemetry_report(kind: MacKind) -> Result<TelemetryReport, Box<dyn std::error::Error>> {
    let config = ArrayConfig { pes: 4, vector_length: 8, kind };
    let hub = Telemetry::new(1 << 16);
    let _elapsed = hub.metrics.timer("repro.telemetry_ns");

    // --- counter-vs-analytic utilization, one run per precision mode ---
    let mut checks = Vec::new();
    for p in Precision::ALL {
        let tel = Telemetry::new(0); // count-only: no event storage needed
        let array = SystolicArray::with_telemetry(config, tel.clone());
        let k = config.dot_length(p);
        let f = Matrix::from_fn(6, k, |r, c| ((r + 2 * c) % 3) as i64 - 1);
        let w = Matrix::from_fn(4, k, |r, c| ((2 * r + c) % 3) as i64 - 1);
        array.matmul(p, &f, &w)?;
        let analytic = array.analytic_stats(p, 6, 4, WeightReuse::WeightStationary);
        let snap = tel.metrics.snapshot();
        let cycles = snap.counter("systolic.cycles");
        let pe_fired = snap.counter("systolic.pe_fired");
        let check = PrecisionCheck {
            precision: p,
            cycles,
            pe_fired,
            stall_cycles: snap.counter("systolic.stall_cycles"),
            counted_utilization: pe_fired as f64 / (cycles * config.pes as u64) as f64,
            analytic_utilization: analytic.utilization,
        };
        if check.abs_error() > UTILIZATION_TOLERANCE {
            return Err(format!(
                "{p}: counted utilization {} diverges from analytic {}",
                check.counted_utilization, check.analytic_utilization
            )
            .into());
        }
        hub.metrics
            .counter(&format!("repro.check.{}.pe_fired", p.bits()))
            .add(pe_fired);
        checks.push(check);
    }

    // --- per-layer / per-PE utilization through the tile compiler ---
    let mut layers = Vec::new();
    for (i, (name, p, shape)) in layer_shapes().into_iter().enumerate() {
        let tel = Telemetry::new(1 << 16);
        let mut array = SystolicArray::new(config);
        array.set_telemetry(tel.clone());
        let mut rng = Rng64::seed_from_u64(0xBE7A ^ i as u64);
        let r = p.value_range();
        let input =
            Tensor::random(shape.in_channels, shape.in_h, shape.in_w, r.clone(), 7 + i as u64);
        let weights = ConvWeights {
            out_c: shape.out_channels,
            in_c: shape.in_channels,
            kh: shape.kernel_h,
            kw: shape.kernel_w,
            data: (0..shape.weight_count() as usize).map(|_| rng.gen_range(r.clone())).collect(),
        };
        let program = compile_conv(&config, p, &shape)?.with_layer(i as u32);
        let (_, stats) = execute(&program, &array, &input, &weights)?;

        let snap = tel.metrics.snapshot();
        let cycles = snap.counter("systolic.cycles");
        let pe_fired = snap.counter("systolic.pe_fired");
        let pe_busy: Vec<u64> = (0..config.pes)
            .map(|pe| snap.counter(&format!("systolic.pe{pe:02}.busy_cycles")))
            .collect();
        debug_assert_eq!(pe_busy.iter().sum::<u64>(), pe_fired);
        layers.push(LayerTelemetry {
            name: name.to_string(),
            precision: p,
            cycles,
            passes: stats.passes,
            pe_fired,
            stall_cycles: snap.counter("systolic.stall_cycles"),
            utilization: pe_fired as f64 / (cycles * config.pes as u64) as f64,
            pe_busy: pe_busy.clone(),
            pe_utilization: pe_busy.iter().map(|&b| b as f64 / cycles as f64).collect(),
        });
        // Mirror the layer into the shared hub so the metrics dump carries
        // the per-layer numbers too.
        let prefix = format!("repro.layer.{name}");
        hub.metrics.counter(&format!("{prefix}.cycles")).add(cycles);
        hub.metrics.counter(&format!("{prefix}.pe_fired")).add(pe_fired);
        hub.metrics
            .counter(&format!("{prefix}.stall_cycles"))
            .add(snap.counter("systolic.stall_cycles"));
        for ev in tel.trace.snapshot().events {
            hub.trace.push(ev);
        }
    }

    // --- gate-level switching activity through the simulator probe ---
    let mac = bsc_mac::build_netlist(kind, 4);
    let mut sim = Simulator::new(mac.netlist())?;
    // The probe settles the design internally before counting, so the
    // post-reset transitions to steady state are not reported as toggles;
    // flop Q transitions land in the probe's `DFF` bucket.
    sim.enable_toggle_probe();
    let mut rng = Rng64::seed_from_u64(0x70661E);
    for p in Precision::ALL {
        mac.set_mode(&mut sim, p);
        let n = mac.macs_per_cycle(p);
        for _ in 0..24 {
            for lane in 0..SIM_LANES {
                let w = bsc_netlist::tb::random_signed_vec(&mut rng, p.bits(), n);
                let a = bsc_netlist::tb::random_signed_vec(&mut rng, p.bits(), n);
                mac.write_vector_lane(&mut sim, lane, p, &w, &a)?;
            }
            sim.step_incremental();
            sim.eval_incremental();
        }
    }
    let probe = sim.take_toggle_stats().expect("probe enabled");
    let toggle_evals = probe.evals();
    let toggles: Vec<ToggleRow> = probe
        .iter()
        .map(|(kind, flips)| ToggleRow { gate: kind.to_string(), toggles: flips })
        .collect();
    for row in &toggles {
        hub.metrics
            .counter(&format!("repro.netlist.toggles.{}", row.gate))
            .add(row.toggles);
    }
    hub.metrics.counter("repro.netlist.toggle_evals").add(toggle_evals);

    drop(_elapsed); // record the experiment duration before snapshotting
    hub.publish_trace_stats();
    Ok(TelemetryReport {
        kind,
        pes: config.pes,
        vector_length: config.vector_length,
        checks,
        layers,
        toggles,
        toggle_evals,
        metrics: hub.metrics.snapshot(),
        trace: hub.trace.snapshot(),
    })
}

/// Renders the utilization / stall summary table the harness prints.
pub fn render_telemetry(report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Telemetry probe — {} array, {} PEs x L={}\n",
        report.kind, report.pes, report.vector_length
    ));
    out.push_str("\ncounter vs analytic utilization (single tile, 6x4):\n");
    out.push_str("  mode   cycles  fired  stalls  counted    analytic   |err|\n");
    for c in &report.checks {
        out.push_str(&format!(
            "  {:<5} {:>7} {:>6} {:>7} {:>9.6} {:>10.6} {:>9.2e}\n",
            c.precision.to_string(),
            c.cycles,
            c.pe_fired,
            c.stall_cycles,
            c.counted_utilization,
            c.analytic_utilization,
            c.abs_error(),
        ));
    }
    out.push_str("\nper-layer utilization (tile compiler, cycle-accurate):\n");
    out.push_str("  layer  mode   passes   cycles   fired  stalls   util  per-PE util\n");
    for l in &report.layers {
        let per_pe = l
            .pe_utilization
            .iter()
            .map(|u| format!("{u:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "  {:<6} {:<5} {:>7} {:>8} {:>7} {:>7} {:>5.1}%  [{per_pe}]\n",
            l.name,
            l.precision.to_string(),
            l.passes,
            l.cycles,
            l.pe_fired,
            l.stall_cycles,
            l.utilization * 100.0,
        ));
    }
    out.push_str(&format!(
        "\nnetlist switching activity ({} evals, vector MAC L=4):\n",
        report.toggle_evals
    ));
    for row in &report.toggles {
        out.push_str(&format!("  {:<6} {:>9} toggles\n", row.gate, row.toggles));
    }
    let dropped = report.trace.dropped;
    out.push_str(&format!(
        "\ntrace: {} events captured, {} dropped\n",
        report.trace.events.len(),
        dropped
    ));
    if dropped > 0 {
        out.push_str(&format!(
            "WARNING: {dropped} trace events were dropped (ring full) — derived \
             per-event views are incomplete\n"
        ));
    }
    out
}

/// Serializes the full report as a JSON document (the `--metrics-out`
/// payload): per-layer per-PE utilization, stall cycles, netlist toggle
/// counts and the complete metrics snapshot.
///
/// With `no_timers` set, wall-clock (`*_ns`) histograms are excluded
/// from the embedded metrics snapshot, making the document byte-identical
/// across repeat runs (everything else the probe records is
/// deterministic).
pub fn telemetry_json(report: &TelemetryReport, no_timers: bool) -> String {
    let metrics =
        if no_timers { report.metrics.without_timers() } else { report.metrics.clone() };
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("design").string(&report.kind.to_string());
    j.key("pes").u64(report.pes as u64);
    j.key("vector_length").u64(report.vector_length as u64);

    j.key("precision_checks").begin_array();
    for c in &report.checks {
        j.begin_object();
        j.key("precision").string(&c.precision.to_string());
        j.key("cycles").u64(c.cycles);
        j.key("pe_fired").u64(c.pe_fired);
        j.key("stall_cycles").u64(c.stall_cycles);
        j.key("counted_utilization").f64(c.counted_utilization);
        j.key("analytic_utilization").f64(c.analytic_utilization);
        j.key("abs_error").f64(c.abs_error());
        j.end_object();
    }
    j.end_array();

    j.key("layers").begin_array();
    for l in &report.layers {
        j.begin_object();
        j.key("name").string(&l.name);
        j.key("precision").string(&l.precision.to_string());
        j.key("cycles").u64(l.cycles);
        j.key("passes").u64(l.passes);
        j.key("pe_fired").u64(l.pe_fired);
        j.key("stall_cycles").u64(l.stall_cycles);
        j.key("utilization").f64(l.utilization);
        j.key("pe_busy").begin_array();
        for &b in &l.pe_busy {
            j.u64(b);
        }
        j.end_array();
        j.key("pe_utilization").begin_array();
        for &u in &l.pe_utilization {
            j.f64(u);
        }
        j.end_array();
        j.end_object();
    }
    j.end_array();

    j.key("netlist_toggles").begin_object();
    j.key("evals").u64(report.toggle_evals);
    j.key("per_gate").begin_object();
    for row in &report.toggles {
        j.key(&row.gate).u64(row.toggles);
    }
    j.end_object();
    j.end_object();

    j.key("metrics");
    sink::write_metrics_object(&mut j, &metrics);
    j.end_object();
    j.finish()
}

/// Serializes the captured trace as JSON (the `--trace-out` payload).
pub fn telemetry_trace_json(report: &TelemetryReport) -> String {
    sink::trace_to_json(&report.trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_consistent_and_serializable() {
        let report = telemetry_report(MacKind::Bsc).unwrap();
        assert_eq!(report.checks.len(), 3);
        for c in &report.checks {
            assert!(c.abs_error() <= UTILIZATION_TOLERANCE, "{c:?}");
        }
        assert_eq!(report.layers.len(), 3);
        for l in &report.layers {
            assert_eq!(l.pe_busy.iter().sum::<u64>(), l.pe_fired);
            assert!(l.utilization > 0.0 && l.utilization <= 1.0);
        }
        assert!(report.toggles.iter().map(|t| t.toggles).sum::<u64>() > 0);

        let json = telemetry_json(&report, false);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pe_utilization\""));
        assert!(json.contains("\"netlist_toggles\""));
        // The dropped-event accounting is published as counters.
        assert!(json.contains("\"telemetry.trace.total\""), "{json}");
        assert!(json.contains("\"telemetry.trace.dropped\""), "{json}");
        let text = render_telemetry(&report);
        assert!(text.contains("per-layer utilization"));
    }

    #[test]
    fn no_timers_strips_wall_clock_histograms() {
        let report = telemetry_report(MacKind::Bsc).unwrap();
        let with = telemetry_json(&report, false);
        let without = telemetry_json(&report, true);
        assert!(with.contains("repro.telemetry_ns"));
        assert!(!without.contains("repro.telemetry_ns"));
    }

    #[test]
    fn toggle_counts_are_deterministic_across_runs() {
        let a = telemetry_report(MacKind::Lpc).unwrap();
        let b = telemetry_report(MacKind::Lpc).unwrap();
        let flat = |r: &TelemetryReport| {
            r.toggles.iter().map(|t| (t.gate.clone(), t.toggles)).collect::<Vec<_>>()
        };
        assert_eq!(flat(&a), flat(&b));
        assert_eq!(a.toggle_evals, b.toggle_evals);
    }
}
