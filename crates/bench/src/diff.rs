//! The `repro diff` regression observatory: field-by-field comparison of
//! two benchmark/metrics JSON documents with configurable relative
//! tolerances.
//!
//! Both documents are parsed with the in-repo RFC 8259 parser and
//! flattened to dotted numeric paths
//! (`designs[BSC-L4].cycles`, `metrics.counters.accel.passes`, ...), so
//! the diff works on any JSON the harness emits — `BENCH_sim.json`,
//! `--metrics-out` payloads, or hand-edited baselines.  Wall-clock
//! fields are machine-dependent, so paths matching the default ignore
//! patterns (`*_ns`, `*_per_sec`, `speedup`) are reported but never
//! gated; deterministic fields (cycles, tape ops, event counts) fail
//! the diff when they drift beyond the tolerance in either direction.

use std::collections::BTreeMap;

use bsc_telemetry::json::{parse_json, JsonParseError};

/// Comparison policy for [`diff_documents`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Maximum allowed relative drift, e.g. `0.05` for ±5 %.
    pub tolerance: f64,
    /// Glob-lite patterns (`*` prefix/suffix wildcards only) naming
    /// machine-dependent fields that are reported but never gated.
    pub ignore: Vec<String>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.05,
            ignore: vec![
                "*_ns".to_string(),
                "*_per_sec".to_string(),
                "*speedup*".to_string(),
                "*wall*".to_string(),
            ],
        }
    }
}

/// Verdict for one flattened field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldStatus {
    /// Within tolerance (or bit-identical).
    Ok,
    /// Drifted beyond tolerance but matches an ignore pattern.
    Ignored,
    /// Drifted beyond tolerance on a gated field.
    Regressed,
    /// Present only in the baseline.
    MissingInCurrent,
    /// Present only in the current document.
    MissingInBaseline,
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct FieldDelta {
    /// Dotted path of the field.
    pub path: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// Verdict under the active [`DiffOptions`].
    pub status: FieldStatus,
}

impl FieldDelta {
    /// Signed relative drift `(current - baseline) / |baseline|`;
    /// `None` when either side is missing.  A zero baseline with a
    /// nonzero current reads as infinite drift.
    pub fn rel_delta(&self) -> Option<f64> {
        let (b, c) = (self.baseline?, self.current?);
        if b == c {
            return Some(0.0);
        }
        if b == 0.0 {
            return Some(f64::INFINITY * (c - b).signum());
        }
        Some((c - b) / b.abs())
    }
}

/// The full comparison of two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One row per field seen in either document, path-sorted.
    pub rows: Vec<FieldDelta>,
    /// The tolerance the verdicts were computed under.
    pub tolerance: f64,
}

impl DiffReport {
    /// Fields that drifted beyond tolerance on a gated path.
    pub fn regressions(&self) -> Vec<&FieldDelta> {
        self.rows.iter().filter(|r| r.status == FieldStatus::Regressed).collect()
    }

    /// Whether the comparison should fail the build.  Missing fields are
    /// warned about, not gated — baselines age as experiments grow.
    pub fn regressed(&self) -> bool {
        !self.regressions().is_empty()
    }

    /// Fields present on only one side.
    pub fn missing(&self) -> Vec<&FieldDelta> {
        self.rows
            .iter()
            .filter(|r| {
                matches!(r.status, FieldStatus::MissingInCurrent | FieldStatus::MissingInBaseline)
            })
            .collect()
    }
}

/// Matches `pattern` against `path` with `*` allowed as a leading and/or
/// trailing wildcard (the only globbing the ignore list needs).
fn glob_lite(pattern: &str, path: &str) -> bool {
    match (pattern.strip_prefix('*'), pattern.strip_suffix('*')) {
        (Some(rest), _) if rest.ends_with('*') => {
            path.contains(rest.trim_end_matches('*'))
        }
        (Some(suffix), None) => path.ends_with(suffix),
        (None, Some(prefix)) => path.starts_with(prefix),
        (None, None) => path == pattern,
        // Unreachable arm shape-wise, but keep it total.
        (Some(infix), Some(_)) => path.contains(infix),
    }
}

fn is_ignored(opts: &DiffOptions, path: &str) -> bool {
    opts.ignore.iter().any(|p| glob_lite(p, path))
}

/// Compares two already-flattened numeric maps.
pub fn diff_flat(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    opts: &DiffOptions,
) -> DiffReport {
    let mut paths: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    paths.sort();
    paths.dedup();

    let rows = paths
        .into_iter()
        .map(|path| {
            let b = baseline.get(path).copied();
            let c = current.get(path).copied();
            let status = match (b, c) {
                (Some(_), None) => FieldStatus::MissingInCurrent,
                (None, Some(_)) => FieldStatus::MissingInBaseline,
                (None, None) => unreachable!("path came from one of the maps"),
                (Some(bv), Some(cv)) => {
                    let drift = if bv == cv {
                        0.0
                    } else if bv == 0.0 {
                        f64::INFINITY
                    } else {
                        ((cv - bv) / bv.abs()).abs()
                    };
                    if drift <= opts.tolerance {
                        FieldStatus::Ok
                    } else if is_ignored(opts, path) {
                        FieldStatus::Ignored
                    } else {
                        FieldStatus::Regressed
                    }
                }
            };
            FieldDelta { path: path.clone(), baseline: b, current: c, status }
        })
        .collect();
    DiffReport { rows, tolerance: opts.tolerance }
}

/// Parses and compares two JSON documents.
///
/// # Errors
///
/// Returns the parse error of the first malformed document.
pub fn diff_documents(
    baseline: &str,
    current: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, JsonParseError> {
    let b = parse_json(baseline)?.flatten_numbers();
    let c = parse_json(current)?.flatten_numbers();
    Ok(diff_flat(&b, &c, opts))
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.6}"),
    }
}

/// Renders the delta table.  With `verbose` false, rows whose drift is
/// zero are collapsed into a single count line.
pub fn render_diff(report: &DiffReport, verbose: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "regression diff (tolerance ±{:.1}%)\n",
        report.tolerance * 100.0
    ));
    out.push_str(&format!(
        "  {:<44} {:>14} {:>14} {:>9}  status\n",
        "field", "baseline", "current", "delta"
    ));
    let mut unchanged = 0usize;
    for row in &report.rows {
        let delta = row
            .rel_delta()
            .map(|d| {
                if d.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:+.2}%", d * 100.0)
                }
            })
            .unwrap_or_else(|| "-".to_string());
        let status = match row.status {
            FieldStatus::Ok => {
                if !verbose && row.rel_delta() == Some(0.0) {
                    unchanged += 1;
                    continue;
                }
                "ok"
            }
            FieldStatus::Ignored => "ignored (timing)",
            FieldStatus::Regressed => "REGRESSED",
            FieldStatus::MissingInCurrent => "missing in current",
            FieldStatus::MissingInBaseline => "new (not in baseline)",
        };
        out.push_str(&format!(
            "  {:<44} {:>14} {:>14} {:>9}  {status}\n",
            row.path,
            fmt_value(row.baseline),
            fmt_value(row.current),
            delta,
        ));
    }
    if unchanged > 0 {
        out.push_str(&format!("  ({unchanged} fields bit-identical, not shown)\n"));
    }
    let regressions = report.regressions();
    if regressions.is_empty() {
        out.push_str("result: PASS — no gated field drifted beyond tolerance\n");
    } else {
        out.push_str(&format!(
            "result: FAIL — {} gated field(s) drifted beyond ±{:.1}%\n",
            regressions.len(),
            report.tolerance * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        r#"{"designs":[{"design":"BSC-L4","cycles":1000,"full_ns":5.0}],"tape_ops":42}"#;

    #[test]
    fn identical_documents_pass() {
        let report = diff_documents(BASE, BASE, &DiffOptions::default()).unwrap();
        assert!(!report.regressed());
        assert!(report.rows.iter().all(|r| r.status == FieldStatus::Ok));
    }

    #[test]
    fn ten_percent_cycle_regression_fails() {
        let current =
            r#"{"designs":[{"design":"BSC-L4","cycles":1100,"full_ns":5.0}],"tape_ops":42}"#;
        let report = diff_documents(BASE, current, &DiffOptions::default()).unwrap();
        assert!(report.regressed());
        let bad = report.regressions();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "designs[BSC-L4].cycles");
        assert!((bad[0].rel_delta().unwrap() - 0.10).abs() < 1e-12);
        assert!(render_diff(&report, false).contains("FAIL"));
    }

    #[test]
    fn improvements_beyond_tolerance_also_flag() {
        // A 40% "improvement" in a deterministic count means the
        // experiment changed, not that the code got faster — gate it.
        let current =
            r#"{"designs":[{"design":"BSC-L4","cycles":600,"full_ns":5.0}],"tape_ops":42}"#;
        let report = diff_documents(BASE, current, &DiffOptions::default()).unwrap();
        assert!(report.regressed());
    }

    #[test]
    fn timing_fields_are_ignored_not_gated() {
        let current =
            r#"{"designs":[{"design":"BSC-L4","cycles":1000,"full_ns":50.0}],"tape_ops":42}"#;
        let report = diff_documents(BASE, current, &DiffOptions::default()).unwrap();
        assert!(!report.regressed());
        let ns = report.rows.iter().find(|r| r.path.ends_with("full_ns")).unwrap();
        assert_eq!(ns.status, FieldStatus::Ignored);
        assert!(render_diff(&report, false).contains("ignored (timing)"));
    }

    #[test]
    fn missing_fields_warn_but_do_not_gate() {
        let current = r#"{"designs":[{"design":"BSC-L4","cycles":1000}],"extra":7}"#;
        let report = diff_documents(BASE, current, &DiffOptions::default()).unwrap();
        assert!(!report.regressed());
        let missing = report.missing();
        assert!(missing.iter().any(|r| r.status == FieldStatus::MissingInCurrent));
        assert!(missing.iter().any(|r| r.status == FieldStatus::MissingInBaseline));
    }

    #[test]
    fn tolerance_is_configurable() {
        let current =
            r#"{"designs":[{"design":"BSC-L4","cycles":1040,"full_ns":5.0}],"tape_ops":42}"#;
        let strict = DiffOptions { tolerance: 0.01, ..DiffOptions::default() };
        assert!(diff_documents(BASE, current, &strict).unwrap().regressed());
        let loose = DiffOptions { tolerance: 0.10, ..DiffOptions::default() };
        assert!(!diff_documents(BASE, current, &loose).unwrap().regressed());
    }

    #[test]
    fn malformed_documents_error_out() {
        assert!(diff_documents("{", BASE, &DiffOptions::default()).is_err());
        assert!(diff_documents(BASE, "not json", &DiffOptions::default()).is_err());
    }

    #[test]
    fn glob_lite_covers_the_pattern_shapes() {
        assert!(glob_lite("*_ns", "bench.full_ns"));
        assert!(!glob_lite("*_ns", "bench.full_ns2"));
        assert!(glob_lite("designs*", "designs[BSC].cycles"));
        assert!(glob_lite("*speedup*", "a.speedup.b"));
        assert!(glob_lite("exact", "exact"));
        assert!(!glob_lite("exact", "exactly"));
    }
}
