//! Netlist-evaluator throughput benchmark: full-sweep vs event-driven
//! incremental evaluation on a weight-stationary workload.
//!
//! This is the perf baseline the compiled-tape rewrite is tracked by:
//! [`run`] drives the same weight-stationary stimulus through
//! [`bsc_netlist::Simulator::eval`] (full tape sweep every pass) and
//! [`bsc_netlist::Simulator::eval_incremental`] (dirty-cone worklist),
//! cross-checks that both paths settle to identical net values, and
//! reports gate evaluations per second for each.  `scripts/ci.sh` emits
//! the result as `BENCH_sim.json` so the trajectory is visible PR over PR.

use bsc_mac::{build_netlist, MacKind, MacNetlist, OperandSide, Precision};
use bsc_netlist::rng::Rng64;
use bsc_netlist::{Simulator, SIM_LANES};
use bsc_telemetry::metrics::Registry;
use bsc_telemetry::JsonBuilder;

/// Throughput comparison of the two evaluation paths on one design.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Design identifier (`kind` and vector length).
    pub design: String,
    /// Live combinational ops on the compiled tape.
    pub tape_ops: usize,
    /// Weight-stationary stimulus cycles timed (two eval passes each).
    pub cycles: usize,
    /// Wall-clock nanoseconds of the full-sweep run.
    pub full_ns: u64,
    /// Wall-clock nanoseconds of the incremental run (same stimulus).
    pub incremental_ns: u64,
    /// Tape ops processed per second on the full-sweep path.
    pub full_gates_per_sec: f64,
    /// Equivalent tape-op throughput of the incremental path (same
    /// logical work completed in `incremental_ns`).
    pub incremental_gates_per_sec: f64,
    /// `full_ns / incremental_ns`.
    pub speedup: f64,
}

/// Pre-generates one packed 64-lane word set per (cycle, bus) so stimulus
/// generation stays outside the timed region.
fn pregen_stimulus(
    mac: &MacNetlist,
    p: Precision,
    cycles: usize,
    seed: u64,
) -> Vec<Vec<[i64; SIM_LANES]>> {
    let mut rng = Rng64::seed_from_u64(seed);
    let fields = mac.kind().fields_per_element(p);
    let mut f = vec![0i64; fields];
    (0..cycles)
        .map(|_| {
            mac.acts()
                .iter()
                .map(|_| {
                    let mut lanes = [0i64; SIM_LANES];
                    for lane in lanes.iter_mut() {
                        bsc_netlist::tb::random_signed_fill(&mut rng, p.bits(), &mut f);
                        *lane = bsc_mac::pack_element(
                            mac.kind(),
                            p,
                            OperandSide::Activation,
                            &f,
                        );
                    }
                    lanes
                })
                .collect()
        })
        .collect()
}

/// One weight-stationary stimulus pass over pre-generated activation
/// words; `incremental` picks the evaluation path.  Returns elapsed
/// nanoseconds of the eval work alone and the final packed net values
/// (for cross-path equality checking).
fn drive(
    mac: &MacNetlist,
    p: Precision,
    stimulus: &[Vec<[i64; SIM_LANES]>],
    seed: u64,
    incremental: bool,
) -> (u64, Vec<u64>) {
    let mut sim = Simulator::new(mac.netlist()).expect("acyclic by construction");
    let mut rng = Rng64::seed_from_u64(seed ^ 0x3E16_47D0);
    mac.set_mode(&mut sim, p);
    let fields = mac.kind().fields_per_element(p);
    let mut f = vec![0i64; fields];
    // Weights once, then settle — everything past here is the steady
    // weight-stationary state the incremental path exploits.
    for bus in mac.weights() {
        let mut lanes = [0i64; SIM_LANES];
        for lane in lanes.iter_mut() {
            bsc_netlist::tb::random_signed_fill(&mut rng, p.bits(), &mut f);
            *lane = bsc_mac::pack_element(mac.kind(), p, OperandSide::Weight, &f);
        }
        sim.write_bus_packed(bus, &lanes);
    }
    sim.step();
    sim.eval();

    let registry = Registry::new();
    {
        let _t = registry.timer("simbench_ns");
        for cycle in stimulus {
            for (bus, lanes) in mac.acts().iter().zip(cycle) {
                sim.write_bus_packed(bus, lanes);
            }
            if incremental {
                sim.step_incremental();
                sim.eval_incremental();
            } else {
                sim.step();
                sim.eval();
            }
        }
    }
    let ns = registry
        .histogram("simbench_ns", bsc_telemetry::metrics::DEFAULT_TIME_BOUNDS_NS)
        .sum();
    (ns, sim.values().to_vec())
}

/// Runs the evaluator benchmark on one design.
///
/// Both paths see byte-identical stimulus; the function asserts they
/// settle to identical net values before reporting throughput.
///
/// # Panics
///
/// Panics if the incremental path diverges from the full sweep — that is
/// a simulator bug, not a benchmark condition.
pub fn run(kind: MacKind, length: usize, cycles: usize) -> SimBenchReport {
    let mac = build_netlist(kind, length);
    let p = Precision::Int8;
    let seed = 0x51B3_ECB5;
    let stimulus = pregen_stimulus(&mac, p, cycles, seed);
    let (full_ns, full_vals) = drive(&mac, p, &stimulus, seed, false);
    let (incremental_ns, inc_vals) = drive(&mac, p, &stimulus, seed, true);
    assert_eq!(
        full_vals, inc_vals,
        "incremental evaluation diverged from the full sweep"
    );

    let sim = Simulator::new(mac.netlist()).expect("acyclic by construction");
    let tape_ops = sim.tape_len();
    // Two evaluation passes per cycle (pre-edge and post-edge).
    let logical_ops = (tape_ops * cycles * 2) as f64;
    let per_sec = |ns: u64| {
        if ns == 0 {
            f64::INFINITY
        } else {
            logical_ops / (ns as f64 / 1e9)
        }
    };
    SimBenchReport {
        design: format!("{kind}-L{length}"),
        tape_ops,
        cycles,
        full_ns,
        incremental_ns,
        full_gates_per_sec: per_sec(full_ns),
        incremental_gates_per_sec: per_sec(incremental_ns),
        speedup: if incremental_ns == 0 {
            f64::INFINITY
        } else {
            full_ns as f64 / incremental_ns as f64
        },
    }
}

/// Renders the human-readable summary `repro simbench` prints.
pub fn render(reports: &[SimBenchReport]) -> String {
    use crate::timing::fmt_ns;
    let mut out = String::new();
    out.push_str("Netlist evaluator throughput — full sweep vs incremental (weight-stationary)\n");
    out.push_str(&format!(
        "{:<12} {:>9} {:>8} {:>14} {:>14} {:>12} {:>12} {:>9}\n",
        "design", "tape ops", "cycles", "full", "incremental", "full Mg/s", "incr Mg/s", "speedup"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<12} {:>9} {:>8} {:>14} {:>14} {:>12.1} {:>12.1} {:>8.2}x\n",
            r.design,
            r.tape_ops,
            r.cycles,
            fmt_ns(r.full_ns as f64),
            fmt_ns(r.incremental_ns as f64),
            r.full_gates_per_sec / 1e6,
            r.incremental_gates_per_sec / 1e6,
            r.speedup,
        ));
    }
    out
}

/// Encodes the reports (plus an optional characterization wall-clock) as
/// the `BENCH_sim.json` baseline document.
pub fn to_json(reports: &[SimBenchReport], workbench_quick_ns: Option<u64>) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("benchmark").string("netlist_evaluator");
    j.key("unit").string("gates_per_sec");
    if let Some(ns) = workbench_quick_ns {
        j.key("workbench_quick_characterize_ns").u64(ns);
    }
    j.key("designs").begin_array();
    for r in reports {
        j.begin_object();
        j.key("design").string(&r.design);
        j.key("tape_ops").u64(r.tape_ops as u64);
        j.key("cycles").u64(r.cycles as u64);
        j.key("full_ns").u64(r.full_ns);
        j.key("incremental_ns").u64(r.incremental_ns);
        j.key("full_gates_per_sec").f64(r.full_gates_per_sec);
        j.key("incremental_gates_per_sec").f64(r.incremental_gates_per_sec);
        j.key("speedup").f64(r.speedup);
        j.end_object();
    }
    j.end_array();
    j.end_object();
    let mut s = j.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_and_report_is_sane() {
        let r = run(MacKind::Bsc, 2, 8);
        assert!(r.tape_ops > 0);
        assert_eq!(r.cycles, 8);
        assert!(r.full_gates_per_sec > 0.0);
        assert!(r.incremental_gates_per_sec > 0.0);
        assert!(r.speedup > 0.0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let r = run(MacKind::Hps, 2, 4);
        let json = to_json(&[r], Some(123));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"workbench_quick_characterize_ns\":123"));
        assert!(json.contains("\"design\":\"HPS-L2\""));
        assert!(json.contains("\"speedup\":"));
    }
}
