//! `repro serve`: drive the batch inference engine from a JSON job
//! manifest and report per-job / aggregate results.
//!
//! The manifest is the wire format a multi-tenant deployment would feed
//! the engine (see `docs/serving.md`):
//!
//! ```json
//! {
//!   "engine": {
//!     "kind": "bsc",
//!     "quick": true,
//!     "queue_capacity": 64,
//!     "workers": 2,
//!     "max_backlog_cycles": 500000
//!   },
//!   "tenants": {
//!     "vision": {"latency_p99_cycles": 400000, "min_goodput": 0.9}
//!   },
//!   "jobs": [
//!     {"name": "lenet-nas", "network": "lenet5", "precision": "nas",
//!      "tenant": "vision"},
//!     {"name": "vgg-8b", "network": "vgg16", "precision": "int8",
//!      "deadline_cycles": 900000, "count": 4}
//!   ]
//! }
//! ```
//!
//! `network` names a built-in benchmark (`lenet5`, `vgg16`, `resnet18`,
//! `nas`); `precision` is a [`PrecisionPolicy`] spelling (`nas` keeps the
//! NAS-assigned layer precisions); `count` repeats the spec N times with
//! a `#i` suffix, sharing one `Arc`'d network.  `tenant` accounts the job
//! to a named tenant (default `"default"`); the optional top-level
//! `tenants` object declares per-tenant [`SloTarget`]s that the batch's
//! SLO report measures attainment against.  The aggregate report and the
//! SLO report are deterministic (wall-clock fields carry the `_ns`
//! suffix the `repro diff` gate exempts), so checked-in baselines catch
//! queue-counter and numeric drift at `--tol 0`.

use std::collections::BTreeMap;

use bsc_accel::{
    BatchReport, Engine, EngineConfig, InferenceJob, JobOutcome, PrecisionPolicy, SloTarget,
};
use bsc_mac::MacKind;
use bsc_nn::{models, SharedNetwork};
use bsc_telemetry::{JsonBuilder, MetricsSnapshot, SpanSnapshot};

/// A parsed manifest: engine parameters plus the job list.
#[derive(Debug)]
pub struct ServeManifest {
    /// Engine configuration built from the `engine` object.
    pub engine: EngineConfig,
    /// Declared per-tenant SLO targets, keyed by tenant name.
    pub tenants: BTreeMap<String, SloTarget>,
    /// Jobs in submission order (repeat specs already expanded).
    pub jobs: Vec<InferenceJob>,
}

/// The result of one serve run: the batch outcome plus the engine's
/// metrics snapshot.
#[derive(Debug)]
pub struct ServeRun {
    /// MAC architecture served.
    pub kind: MacKind,
    /// Queue bound the engine ran with.
    pub queue_capacity: usize,
    /// Per-job outcomes and aggregates.
    pub batch: BatchReport,
    /// Engine telemetry (queue/admission counters, cache stats).
    pub metrics: MetricsSnapshot,
    /// Wall-clock spans of the run; their IDs stamp the structured
    /// event log ([`events_jsonl`]) for correlation with traces.
    pub spans: SpanSnapshot,
}

fn err_at(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

pub(crate) fn lookup_network(name: &str) -> Result<SharedNetwork, String> {
    let net = match name.trim().to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "lenet5" | "lenet" => models::lenet5(),
        "vgg16" | "vgg" => models::vgg16(),
        "resnet18" | "resnet" => models::resnet18(),
        "nas" | "nasbased" | "nasvgg" => models::nas_based(),
        "micro" | "micromlp" => models::micro(),
        other => return Err(format!("unknown network `{other}` (expected lenet5|vgg16|resnet18|nas|micro)")),
    };
    Ok(net.into_shared())
}

/// Parses the optional top-level `tenants` object shared by the serve
/// and online manifests.
pub(crate) fn parse_tenants(
    doc: &bsc_telemetry::JsonValue,
) -> Result<BTreeMap<String, SloTarget>, String> {
    let mut tenants: BTreeMap<String, SloTarget> = BTreeMap::new();
    if let Some(t) = doc.get("tenants") {
        let bsc_telemetry::JsonValue::Object(members) = t else {
            return Err("manifest: `tenants` must be an object".into());
        };
        for (tenant, spec) in members {
            let ctx = format!("tenants.{tenant}");
            let p99 = spec
                .get("latency_p99_cycles")
                .and_then(|v| v.as_f64())
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| {
                    err_at(&ctx, "latency_p99_cycles: expected a non-negative integer")
                })? as u64;
            let min_goodput = match spec.get("min_goodput") {
                None => 0.0,
                Some(v) => v
                    .as_f64()
                    .filter(|g| (0.0..=1.0).contains(g))
                    .ok_or_else(|| err_at(&ctx, "min_goodput: expected a number in 0..=1"))?,
            };
            tenants.insert(
                tenant.clone(),
                SloTarget { latency_p99_cycles: p99, min_goodput },
            );
        }
    }
    Ok(tenants)
}

/// Parses a serve manifest.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown networks,
/// unknown precisions, or out-of-range parameters.
pub fn parse_manifest(text: &str) -> Result<ServeManifest, String> {
    let doc = bsc_telemetry::parse_json(text).map_err(|e| err_at("manifest", e))?;
    let eng = doc.get("engine").ok_or("manifest: missing `engine` object")?;
    let kind = match eng
        .get("kind")
        .and_then(|v| v.as_str())
        .unwrap_or("bsc")
        .to_ascii_lowercase()
        .as_str()
    {
        "bsc" => MacKind::Bsc,
        "lpc" => MacKind::Lpc,
        "hps" => MacKind::Hps,
        other => return Err(format!("engine.kind: unknown architecture `{other}`")),
    };
    let quick = matches!(eng.get("quick"), Some(bsc_telemetry::JsonValue::Bool(true)));
    let mut config = if quick { EngineConfig::quick(kind) } else { EngineConfig::paper(kind) };
    let usize_field = |key: &str| -> Result<Option<usize>, String> {
        match eng.get(key) {
            None => Ok(None),
            Some(v) => {
                let n = v.as_f64().ok_or_else(|| format!("engine.{key}: expected a number"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("engine.{key}: expected a non-negative integer"));
                }
                Ok(Some(n as usize))
            }
        }
    };
    if let Some(cap) = usize_field("queue_capacity")? {
        if cap == 0 {
            return Err("engine.queue_capacity: must be positive".into());
        }
        config.queue_capacity = cap;
    }
    if let Some(w) = usize_field("workers")? {
        if w == 0 {
            return Err("engine.workers: must be positive".into());
        }
        config.workers = Some(w);
    }
    if let Some(limit) = usize_field("max_backlog_cycles")? {
        config.max_backlog_cycles = Some(limit as u64);
    }

    let tenants = parse_tenants(&doc)?;

    let specs = doc
        .get("jobs")
        .and_then(|v| v.as_array())
        .ok_or("manifest: missing `jobs` array")?;
    let mut networks: BTreeMap<String, SharedNetwork> = BTreeMap::new();
    let mut jobs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let ctx = format!("jobs[{i}]");
        let net_name = spec
            .get("network")
            .and_then(|v| v.as_str())
            .ok_or_else(|| err_at(&ctx, "missing `network`"))?;
        let network = match networks.get(net_name) {
            Some(n) => SharedNetwork::clone(n),
            None => {
                let n = lookup_network(net_name).map_err(|e| err_at(&ctx, e))?;
                networks.insert(net_name.to_string(), SharedNetwork::clone(&n));
                n
            }
        };
        let name = spec
            .get("name")
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .unwrap_or_else(|| format!("job{i}"));
        let policy = match spec.get("precision").and_then(|v| v.as_str()) {
            None => PrecisionPolicy::AsTrained,
            Some(s) => s
                .parse::<PrecisionPolicy>()
                .map_err(|e| err_at(&ctx, format!("precision: {e}")))?,
        };
        let deadline = match spec.get("deadline_cycles") {
            None => None,
            Some(v) => {
                let n = v
                    .as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or_else(|| err_at(&ctx, "deadline_cycles: expected a non-negative integer"))?;
                Some(n as u64)
            }
        };
        let count = match spec.get("count") {
            None => 1,
            Some(v) => v
                .as_f64()
                .filter(|n| *n >= 1.0 && n.fract() == 0.0)
                .ok_or_else(|| err_at(&ctx, "count: expected a positive integer"))?
                as usize,
        };
        let tenant = spec
            .get("tenant")
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| err_at(&ctx, "tenant: expected a string"))
            })
            .transpose()?;
        for rep in 0..count {
            let mut job = InferenceJob::new(
                if count == 1 { name.clone() } else { format!("{name}#{rep}") },
                SharedNetwork::clone(&network),
            )
            .with_policy(policy);
            if let Some(d) = deadline {
                job = job.with_deadline(d);
            }
            if let Some(t) = &tenant {
                job = job.with_tenant(t.clone());
                // Submitting a job with a target declares it for the
                // whole tenant; targets for tenants that never submit
                // are simply unused.
                if let Some(target) = tenants.get(t) {
                    job = job.with_slo(*target);
                }
            }
            jobs.push(job);
        }
    }
    Ok(ServeManifest { engine: config, tenants, jobs })
}

/// Runs a manifest through a fresh engine on the process-wide
/// characterization cache.
///
/// # Errors
///
/// Returns a message on manifest, characterization or scheduling
/// failures.
pub fn serve(manifest_text: &str) -> Result<ServeRun, String> {
    let manifest = parse_manifest(manifest_text)?;
    let kind = manifest.engine.accel.kind;
    let queue_capacity = manifest.engine.queue_capacity;
    let mut engine =
        Engine::new(manifest.engine).map_err(|e| err_at("characterization", e))?;
    let batch = engine.run_jobs(manifest.jobs).map_err(|e| err_at("batch", e))?;
    bsc_accel::CharacterizationCache::global().publish(engine.telemetry());
    let metrics = engine.telemetry().metrics.snapshot();
    let spans = engine.telemetry().spans.snapshot();
    Ok(ServeRun { kind, queue_capacity, batch, metrics, spans })
}

/// Aligned-text view of one serve run.
pub fn render(run: &ServeRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} engine, queue capacity {}, {} jobs",
        run.kind,
        run.queue_capacity,
        run.batch.submitted()
    );
    let _ = write!(out, "{}", run.batch);
    let _ = writeln!(
        out,
        "aggregate: {:.1} MACs/cycle over {} cycles, {:.1} pJ total, characterization runs {}",
        run.batch.macs_per_cycle(),
        run.batch.makespan_cycles(),
        run.batch.total_energy_fj() / 1e3,
        run.metrics.counter("telemetry.characterize.runs"),
    );
    if let Some(h) = run.metrics.histogram("engine.queue.wait_cycles") {
        let _ = writeln!(
            out,
            "queue wait: p50 {:.0} / p95 {:.0} / p99 {:.0} cycles over {} dispatches (max {})",
            h.p50().unwrap_or(0.0),
            h.p95().unwrap_or(0.0),
            h.p99().unwrap_or(0.0),
            h.count,
            h.max,
        );
    }
    // Labeled outcome totals: one line per `engine.jobs{...}` point, in
    // the family's canonical order.
    for (labels, total) in run.metrics.labeled_counter("engine.jobs") {
        let _ = writeln!(out, "  engine.jobs{labels} {total}");
    }
    // Per-tenant SLO summary.
    for t in &run.batch.slo.tenants {
        let verdict = match &t.attainment {
            Some(a) if a.attained => "SLO met".to_string(),
            Some(a) => format!(
                "SLO MISSED (p99 {}, goodput {})",
                if a.latency_p99_ok { "ok" } else { "over" },
                if a.goodput_ok { "ok" } else { "under" },
            ),
            None => "no target".to_string(),
        };
        let _ = writeln!(
            out,
            "tenant {:<12} {} submitted / {} completed / {} rejected / {} shed, p99 {} cyc, goodput {:.2}, {:.1} pJ — {}",
            t.tenant,
            t.submitted,
            t.completed,
            t.rejected,
            t.shed,
            t.latency.p99,
            t.goodput,
            t.energy_fj as f64 / 1e3,
            verdict,
        );
    }
    out
}

/// Machine-readable aggregate report for the CI baseline gate.  Every
/// deterministic field (outcome counts, cycles, MACs, energies, queue
/// counters) is gated by `repro diff`; wall-clock fields end in `_ns`
/// and are exempt.
pub fn report_json(run: &ServeRun) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("engine").begin_object();
    j.key("kind").string(&run.kind.to_string());
    j.key("queue_capacity").u64(run.queue_capacity as u64);
    j.end_object();

    j.key("jobs").begin_array();
    for outcome in run.batch.outcomes() {
        j.begin_object();
        j.key("name").string(outcome.name());
        j.key("outcome").string(outcome.label());
        match outcome {
            JobOutcome::Completed(r) => {
                j.key("network").string(r.report.network());
                j.key("cycles").u64(r.cycles());
                j.key("macs").u64(r.macs());
                j.key("macs_per_cycle").f64(r.macs_per_cycle());
                j.key("energy_fj").f64(r.energy_fj());
                j.key("queue_wait_cycles").u64(r.queue_wait_cycles);
                j.key("completion_cycle").u64(r.completion_cycle);
                if let Some(met) = r.deadline_met() {
                    j.key("deadline_met").bool(met);
                }
            }
            JobOutcome::Rejected { reason, .. } => {
                j.key("reason").string(&reason.to_string());
            }
            JobOutcome::Shed { reason, .. } => {
                j.key("reason").string(&reason.to_string());
            }
        }
        j.end_object();
    }
    j.end_array();

    j.key("aggregate").begin_object();
    j.key("submitted").u64(run.batch.submitted() as u64);
    j.key("completed").u64(run.batch.completed_count() as u64);
    j.key("rejected").u64(run.batch.rejected_count() as u64);
    j.key("shed").u64(run.batch.shed_count() as u64);
    j.key("makespan_cycles").u64(run.batch.makespan_cycles());
    j.key("total_macs").u64(run.batch.total_macs());
    j.key("macs_per_cycle").f64(run.batch.macs_per_cycle());
    j.key("total_energy_fj").f64(run.batch.total_energy_fj());
    j.key("peak_queue_depth").u64(run.batch.peak_queue_depth as u64);
    j.end_object();

    j.key("counters").begin_object();
    for name in [
        "engine.jobs.submitted",
        "engine.jobs.admitted",
        "engine.jobs.rejected",
        "engine.jobs.shed",
        "engine.jobs.completed",
        "engine.cache.hits",
        "engine.cache.misses",
        "telemetry.characterize.runs",
    ] {
        j.key(name).u64(run.metrics.counter(name));
    }
    j.key("engine.queue.peak_depth").i64(run.metrics.gauge("engine.queue.peak_depth"));
    j.end_object();

    // Admission → dispatch waits on the virtual batch clock: cycle-domain
    // and therefore deterministic and gated like every other count.
    j.key("queue_wait_cycles").begin_object();
    match run.metrics.histogram("engine.queue.wait_cycles") {
        Some(h) => {
            j.key("count").u64(h.count);
            j.key("max").u64(h.max);
            j.key("p50").f64(h.p50().unwrap_or(0.0));
            j.key("p95").f64(h.p95().unwrap_or(0.0));
            j.key("p99").f64(h.p99().unwrap_or(0.0));
        }
        None => {
            j.key("count").u64(0);
        }
    }
    j.end_object();

    // Wall clock, reported but never gated (the `_ns` suffix).
    j.key("run_batch_ns")
        .u64(run.metrics.histogram("engine.run_batch_ns").map_or(0, |h| h.sum));
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

/// Machine-readable per-tenant SLO report for the CI baseline gate.
///
/// Every field is either an integer (counts, cycle quantiles from the
/// integer sketch, whole-fJ energy attributions) or a float derived
/// from integers (rates), all computed by a serial fold over the
/// outcome list — the document is byte-identical at any worker count
/// and is diffed at `--tol 0` against `BENCH_slo_baseline.json`.
/// Tenant entries carry a `name` member so diff paths are keyed by
/// tenant, not array position.
pub fn slo_json(run: &ServeRun) -> String {
    let slo = &run.batch.slo;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("engine").begin_object();
    j.key("kind").string(&run.kind.to_string());
    j.key("window_width_cycles").u64(slo.window_width_cycles);
    j.key("total_energy_fj").u64(slo.total_energy_fj());
    j.end_object();

    write_slo_tenants(&mut j, slo);
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

/// Writes the `tenants` array of an SLO report — the exact member
/// layout both `repro serve` and `repro online` gate at `--tol 0`.
pub(crate) fn write_slo_tenants(j: &mut JsonBuilder, slo: &bsc_accel::SloReport) {
    j.key("tenants").begin_array();
    for t in &slo.tenants {
        j.begin_object();
        j.key("name").string(t.tenant.as_str());
        j.key("submitted").u64(t.submitted);
        j.key("completed").u64(t.completed);
        j.key("rejected").u64(t.rejected);
        j.key("shed").u64(t.shed);
        j.key("goodput").f64(t.goodput);
        j.key("reject_rate").f64(t.reject_rate());
        j.key("shed_rate").f64(t.shed_rate());
        j.key("deadline_jobs").u64(t.deadline_jobs);
        j.key("deadline_met").u64(t.deadline_met);
        j.key("macs").u64(t.macs);
        j.key("energy_fj").u64(t.energy_fj);

        j.key("latency_cycles").begin_object();
        j.key("count").u64(t.latency.count);
        j.key("min").u64(t.latency.min);
        j.key("max").u64(t.latency.max);
        j.key("p50").u64(t.latency.p50);
        j.key("p95").u64(t.latency.p95);
        j.key("p99").u64(t.latency.p99);
        j.end_object();

        j.key("rejected_by_reason").begin_object();
        for (reason, n) in &t.rejected_by_reason {
            j.key(reason).u64(*n);
        }
        j.end_object();
        j.key("shed_by_reason").begin_object();
        for (reason, n) in &t.shed_by_reason {
            j.key(reason).u64(*n);
        }
        j.end_object();

        j.key("energy_by_precision").begin_object();
        for (precision, fj) in &t.energy_by_precision {
            j.key(precision).u64(*fj);
        }
        j.end_object();

        if let Some(target) = &t.target {
            j.key("target").begin_object();
            j.key("latency_p99_cycles").u64(target.latency_p99_cycles);
            j.key("min_goodput").f64(target.min_goodput);
            j.end_object();
        }
        if let Some(a) = &t.attainment {
            j.key("attainment").begin_object();
            j.key("latency_p99_ok").bool(a.latency_p99_ok);
            j.key("goodput_ok").bool(a.goodput_ok);
            j.key("attained").bool(a.attained);
            j.key("p99_ratio").f64(a.p99_ratio);
            j.key("burn_rate").f64(a.burn_rate);
            j.end_object();
        }

        j.key("windows").begin_array();
        for w in &t.windows {
            j.begin_object();
            j.key("window").u64(w.window);
            j.key("start_cycle").u64(w.start_cycle);
            j.key("completed").u64(w.completed);
            j.key("shed").u64(w.shed);
            j.key("macs").u64(w.macs);
            j.end_object();
        }
        j.end_array();
        j.end_object();
    }
    j.end_array();
}

/// Structured event log: one strict-JSON object per line, each stamped
/// with the wall-clock span correlation IDs of [`ServeRun::spans`], so
/// log lines join against Perfetto exports and trace snapshots.
///
/// Span IDs and `_ns` durations are wall-clock-era values and therefore
/// *not* gated by the baseline diff; the CI gate only requires every
/// line to parse under the strict RFC 8259 parser (which this function
/// also asserts itself, line by line).
pub fn events_jsonl(run: &ServeRun) -> String {
    let batch_span = run.spans.by_name("engine.run_batch").map_or(0, |s| s.id);
    let mut lines = Vec::new();

    let mut batch = JsonBuilder::new();
    batch.begin_object();
    batch.key("event").string("batch");
    batch.key("span").u64(batch_span);
    batch.key("kind").string(&run.kind.to_string());
    batch.key("submitted").u64(run.batch.submitted() as u64);
    batch.key("completed").u64(run.batch.completed_count() as u64);
    batch.key("rejected").u64(run.batch.rejected_count() as u64);
    batch.key("shed").u64(run.batch.shed_count() as u64);
    batch.key("makespan_cycles").u64(run.batch.makespan_cycles());
    batch
        .key("duration_ns")
        .u64(run.spans.by_name("engine.run_batch").map_or(0, |s| s.duration_ns()));
    batch.end_object();
    lines.push(batch.finish());

    for outcome in run.batch.outcomes() {
        let span = run.spans.by_name(&format!("engine.job.{}", outcome.name()));
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("event").string("job");
        j.key("name").string(outcome.name());
        j.key("tenant").string(outcome.tenant().as_str());
        j.key("outcome").string(outcome.label());
        j.key("span").u64(span.map_or(0, |s| s.id));
        j.key("parent_span").u64(span.map_or(batch_span, |s| s.parent));
        match outcome {
            JobOutcome::Completed(r) => {
                j.key("queue_wait_cycles").u64(r.queue_wait_cycles);
                j.key("completion_cycle").u64(r.completion_cycle);
                j.key("macs").u64(r.macs());
                if let Some(met) = r.deadline_met() {
                    j.key("deadline_met").bool(met);
                }
            }
            JobOutcome::Rejected { reason, .. } => {
                j.key("reason").string(reason.slug());
            }
            JobOutcome::Shed { reason, .. } => {
                j.key("reason").string(reason.slug());
                j.key("decision_cycle").u64(reason.decision_cycle());
            }
        }
        j.key("duration_ns").u64(span.map_or(0, |s| s.duration_ns()));
        j.end_object();
        lines.push(j.finish());
    }

    let mut out = String::new();
    for line in lines {
        bsc_telemetry::parse_json(&line).expect("event line must be strict RFC 8259 JSON");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"{
      "engine": {"kind": "bsc", "quick": true, "queue_capacity": 4, "workers": 2},
      "jobs": [
        {"name": "lenet-nas", "network": "lenet5"},
        {"name": "lenet-8b", "network": "lenet5", "precision": "int8", "count": 2},
        {"name": "dead", "network": "lenet5", "precision": "int2", "deadline_cycles": 1}
      ]
    }"#;

    #[test]
    fn manifest_parses_and_expands_counts() {
        let m = parse_manifest(MANIFEST).unwrap();
        assert_eq!(m.engine.queue_capacity, 4);
        assert_eq!(m.engine.workers, Some(2));
        assert_eq!(m.jobs.len(), 4);
        assert_eq!(m.jobs[1].name, "lenet-8b#0");
        assert_eq!(m.jobs[2].name, "lenet-8b#1");
        // Repeats share the network allocation.
        assert!(SharedNetwork::ptr_eq(&m.jobs[1].network, &m.jobs[2].network));
        assert_eq!(m.jobs[3].deadline_cycles, Some(1));
    }

    #[test]
    fn malformed_manifests_are_rejected_with_context() {
        assert!(parse_manifest("{}").unwrap_err().contains("engine"));
        let bad_net = MANIFEST.replace("lenet5", "alexnet");
        assert!(parse_manifest(&bad_net).unwrap_err().contains("alexnet"));
        let bad_precision = MANIFEST.replace("int8", "int3");
        assert!(parse_manifest(&bad_precision).unwrap_err().contains("precision"));
    }

    const TENANT_MANIFEST: &str = r#"{
      "engine": {"kind": "bsc", "quick": true, "queue_capacity": 8, "workers": 2},
      "tenants": {
        "gold": {"latency_p99_cycles": 900000000, "min_goodput": 0.5},
        "strict": {"latency_p99_cycles": 1, "min_goodput": 1.0}
      },
      "jobs": [
        {"name": "g", "network": "lenet5", "tenant": "gold", "count": 2},
        {"name": "s", "network": "lenet5", "precision": "int8", "tenant": "strict"},
        {"name": "free", "network": "lenet5", "precision": "int4"}
      ]
    }"#;

    #[test]
    fn manifest_tenants_declare_targets_on_their_jobs() {
        let m = parse_manifest(TENANT_MANIFEST).unwrap();
        assert_eq!(m.tenants.len(), 2);
        assert_eq!(m.jobs[0].tenant.as_str(), "gold");
        assert_eq!(m.jobs[0].slo.unwrap().latency_p99_cycles, 900_000_000);
        assert_eq!(m.jobs[2].tenant.as_str(), "strict");
        assert_eq!(m.jobs[2].slo.unwrap().min_goodput, 1.0);
        // No tenant key: the default tenant, no target.
        assert_eq!(m.jobs[3].tenant.as_str(), "default");
        assert!(m.jobs[3].slo.is_none());
        // Malformed targets are rejected with context.
        let bad = TENANT_MANIFEST.replace("900000000", "-1");
        assert!(parse_manifest(&bad).unwrap_err().contains("latency_p99_cycles"));
        let bad = TENANT_MANIFEST.replace("0.5", "1.5");
        assert!(parse_manifest(&bad).unwrap_err().contains("min_goodput"));
    }

    #[test]
    fn slo_json_is_byte_identical_at_any_worker_count() {
        let at = |workers: usize| {
            let manifest =
                TENANT_MANIFEST.replace("\"workers\": 2", &format!("\"workers\": {workers}"));
            slo_json(&serve(&manifest).unwrap())
        };
        let one = at(1);
        assert_eq!(one, at(2), "1 vs 2 workers");
        assert_eq!(one, at(8), "1 vs 8 workers");
        let doc = bsc_telemetry::parse_json(&one).expect("slo report is valid JSON");
        let tenants = doc.get("tenants").and_then(|v| v.as_array()).unwrap();
        // Sorted by tenant name, each entry keyed by `name` for diff.
        let names: Vec<_> =
            tenants.iter().map(|t| t.get("name").and_then(|v| v.as_str()).unwrap()).collect();
        assert_eq!(names, vec!["default", "gold", "strict"]);
        // gold met its loose target; strict missed its hopeless one.
        let by_name = |n: &str| tenants.iter().find(|t| t.get("name").unwrap().as_str() == Some(n)).unwrap();
        assert_eq!(
            by_name("gold").get("attainment").and_then(|a| a.get("attained")),
            Some(&bsc_telemetry::JsonValue::Bool(true))
        );
        assert_eq!(
            by_name("strict").get("attainment").and_then(|a| a.get("attained")),
            Some(&bsc_telemetry::JsonValue::Bool(false))
        );
        assert!(by_name("default").get("attainment").is_none());
        // Tenant energies sum exactly to the batch total.
        let total: f64 = tenants
            .iter()
            .map(|t| t.get("energy_fj").and_then(|v| v.as_f64()).unwrap())
            .sum();
        assert_eq!(
            Some(total),
            doc.get("engine").and_then(|e| e.get("total_energy_fj")).and_then(|v| v.as_f64())
        );
    }

    #[test]
    fn events_jsonl_lines_parse_and_carry_span_ids() {
        let run = serve(TENANT_MANIFEST).unwrap();
        let log = events_jsonl(&run);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 1 + run.batch.submitted(), "batch line + one per job");
        let batch = bsc_telemetry::parse_json(lines[0]).expect("strict JSON");
        assert_eq!(batch.get("event").and_then(|v| v.as_str()), Some("batch"));
        let batch_span = batch.get("span").and_then(|v| v.as_f64()).unwrap();
        assert!(batch_span > 0.0, "batch span recorded");
        for line in &lines[1..] {
            let event = bsc_telemetry::parse_json(line).expect("strict JSON");
            assert_eq!(event.get("event").and_then(|v| v.as_str()), Some("job"));
            assert!(event.get("tenant").is_some());
            let outcome = event.get("outcome").and_then(|v| v.as_str()).unwrap();
            if outcome == "completed" {
                // Completed jobs ran inside a recorded span.  (Its
                // parent is whatever span was innermost when the worker
                // began it — present, but not asserted further.)
                assert!(event.get("span").and_then(|v| v.as_f64()).unwrap() > 0.0);
                assert!(event.get("parent_span").and_then(|v| v.as_f64()).is_some());
            }
        }
    }

    #[test]
    fn serve_runs_the_manifest_end_to_end() {
        let run = serve(MANIFEST).unwrap();
        assert_eq!(run.batch.submitted(), 4);
        assert_eq!(run.batch.completed_count(), 3);
        assert_eq!(run.batch.rejected_count(), 1, "1-cycle deadline must be rejected");
        let json = report_json(&run);
        let doc = bsc_telemetry::parse_json(&json).expect("report is valid JSON");
        assert_eq!(
            doc.get("aggregate").and_then(|a| a.get("submitted")).and_then(|v| v.as_f64()),
            Some(4.0)
        );
        let text = render(&run);
        assert!(text.contains("BSC engine"), "{text}");
        // Queue waits surface in both the JSON gate and the text view.
        assert_eq!(
            doc.get("queue_wait_cycles").and_then(|q| q.get("count")).and_then(|v| v.as_f64()),
            Some(3.0)
        );
        assert!(text.contains("queue wait: p50"), "{text}");
    }
}
