//! `repro serve`: drive the batch inference engine from a JSON job
//! manifest and report per-job / aggregate results.
//!
//! The manifest is the wire format a multi-tenant deployment would feed
//! the engine (see `docs/serving.md`):
//!
//! ```json
//! {
//!   "engine": {
//!     "kind": "bsc",
//!     "quick": true,
//!     "queue_capacity": 64,
//!     "workers": 2,
//!     "max_backlog_cycles": 500000
//!   },
//!   "jobs": [
//!     {"name": "lenet-nas", "network": "lenet5", "precision": "nas"},
//!     {"name": "vgg-8b", "network": "vgg16", "precision": "int8",
//!      "deadline_cycles": 900000, "count": 4}
//!   ]
//! }
//! ```
//!
//! `network` names a built-in benchmark (`lenet5`, `vgg16`, `resnet18`,
//! `nas`); `precision` is a [`PrecisionPolicy`] spelling (`nas` keeps the
//! NAS-assigned layer precisions); `count` repeats the spec N times with
//! a `#i` suffix, sharing one `Arc`'d network.  The aggregate report is
//! deterministic (wall-clock fields carry the `_ns` suffix the `repro
//! diff` gate exempts), so a checked-in baseline catches queue-counter
//! and numeric drift.

use std::collections::BTreeMap;

use bsc_accel::{BatchReport, Engine, EngineConfig, InferenceJob, JobOutcome, PrecisionPolicy};
use bsc_mac::MacKind;
use bsc_nn::{models, SharedNetwork};
use bsc_telemetry::{JsonBuilder, MetricsSnapshot};

/// A parsed manifest: engine parameters plus the job list.
#[derive(Debug)]
pub struct ServeManifest {
    /// Engine configuration built from the `engine` object.
    pub engine: EngineConfig,
    /// Jobs in submission order (repeat specs already expanded).
    pub jobs: Vec<InferenceJob>,
}

/// The result of one serve run: the batch outcome plus the engine's
/// metrics snapshot.
#[derive(Debug)]
pub struct ServeRun {
    /// MAC architecture served.
    pub kind: MacKind,
    /// Queue bound the engine ran with.
    pub queue_capacity: usize,
    /// Per-job outcomes and aggregates.
    pub batch: BatchReport,
    /// Engine telemetry (queue/admission counters, cache stats).
    pub metrics: MetricsSnapshot,
}

fn err_at(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

fn lookup_network(name: &str) -> Result<SharedNetwork, String> {
    let net = match name.trim().to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "lenet5" | "lenet" => models::lenet5(),
        "vgg16" | "vgg" => models::vgg16(),
        "resnet18" | "resnet" => models::resnet18(),
        "nas" | "nasbased" | "nasvgg" => models::nas_based(),
        other => return Err(format!("unknown network `{other}` (expected lenet5|vgg16|resnet18|nas)")),
    };
    Ok(net.into_shared())
}

/// Parses a serve manifest.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown networks,
/// unknown precisions, or out-of-range parameters.
pub fn parse_manifest(text: &str) -> Result<ServeManifest, String> {
    let doc = bsc_telemetry::parse_json(text).map_err(|e| err_at("manifest", e))?;
    let eng = doc.get("engine").ok_or("manifest: missing `engine` object")?;
    let kind = match eng
        .get("kind")
        .and_then(|v| v.as_str())
        .unwrap_or("bsc")
        .to_ascii_lowercase()
        .as_str()
    {
        "bsc" => MacKind::Bsc,
        "lpc" => MacKind::Lpc,
        "hps" => MacKind::Hps,
        other => return Err(format!("engine.kind: unknown architecture `{other}`")),
    };
    let quick = matches!(eng.get("quick"), Some(bsc_telemetry::JsonValue::Bool(true)));
    let mut config = if quick { EngineConfig::quick(kind) } else { EngineConfig::paper(kind) };
    let usize_field = |key: &str| -> Result<Option<usize>, String> {
        match eng.get(key) {
            None => Ok(None),
            Some(v) => {
                let n = v.as_f64().ok_or_else(|| format!("engine.{key}: expected a number"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("engine.{key}: expected a non-negative integer"));
                }
                Ok(Some(n as usize))
            }
        }
    };
    if let Some(cap) = usize_field("queue_capacity")? {
        if cap == 0 {
            return Err("engine.queue_capacity: must be positive".into());
        }
        config.queue_capacity = cap;
    }
    if let Some(w) = usize_field("workers")? {
        if w == 0 {
            return Err("engine.workers: must be positive".into());
        }
        config.workers = Some(w);
    }
    if let Some(limit) = usize_field("max_backlog_cycles")? {
        config.max_backlog_cycles = Some(limit as u64);
    }

    let specs = doc
        .get("jobs")
        .and_then(|v| v.as_array())
        .ok_or("manifest: missing `jobs` array")?;
    let mut networks: BTreeMap<String, SharedNetwork> = BTreeMap::new();
    let mut jobs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let ctx = format!("jobs[{i}]");
        let net_name = spec
            .get("network")
            .and_then(|v| v.as_str())
            .ok_or_else(|| err_at(&ctx, "missing `network`"))?;
        let network = match networks.get(net_name) {
            Some(n) => SharedNetwork::clone(n),
            None => {
                let n = lookup_network(net_name).map_err(|e| err_at(&ctx, e))?;
                networks.insert(net_name.to_string(), SharedNetwork::clone(&n));
                n
            }
        };
        let name = spec
            .get("name")
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .unwrap_or_else(|| format!("job{i}"));
        let policy = match spec.get("precision").and_then(|v| v.as_str()) {
            None => PrecisionPolicy::AsTrained,
            Some(s) => s
                .parse::<PrecisionPolicy>()
                .map_err(|e| err_at(&ctx, format!("precision: {e}")))?,
        };
        let deadline = match spec.get("deadline_cycles") {
            None => None,
            Some(v) => {
                let n = v
                    .as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or_else(|| err_at(&ctx, "deadline_cycles: expected a non-negative integer"))?;
                Some(n as u64)
            }
        };
        let count = match spec.get("count") {
            None => 1,
            Some(v) => v
                .as_f64()
                .filter(|n| *n >= 1.0 && n.fract() == 0.0)
                .ok_or_else(|| err_at(&ctx, "count: expected a positive integer"))?
                as usize,
        };
        for rep in 0..count {
            let mut job = InferenceJob::new(
                if count == 1 { name.clone() } else { format!("{name}#{rep}") },
                SharedNetwork::clone(&network),
            )
            .with_policy(policy);
            if let Some(d) = deadline {
                job = job.with_deadline(d);
            }
            jobs.push(job);
        }
    }
    Ok(ServeManifest { engine: config, jobs })
}

/// Runs a manifest through a fresh engine on the process-wide
/// characterization cache.
///
/// # Errors
///
/// Returns a message on manifest, characterization or scheduling
/// failures.
pub fn serve(manifest_text: &str) -> Result<ServeRun, String> {
    let manifest = parse_manifest(manifest_text)?;
    let kind = manifest.engine.accel.kind;
    let queue_capacity = manifest.engine.queue_capacity;
    let mut engine =
        Engine::new(manifest.engine).map_err(|e| err_at("characterization", e))?;
    let batch = engine.run_jobs(manifest.jobs).map_err(|e| err_at("batch", e))?;
    bsc_accel::CharacterizationCache::global().publish(engine.telemetry());
    let metrics = engine.telemetry().metrics.snapshot();
    Ok(ServeRun { kind, queue_capacity, batch, metrics })
}

/// Aligned-text view of one serve run.
pub fn render(run: &ServeRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} engine, queue capacity {}, {} jobs",
        run.kind,
        run.queue_capacity,
        run.batch.submitted()
    );
    let _ = write!(out, "{}", run.batch);
    let _ = writeln!(
        out,
        "aggregate: {:.1} MACs/cycle over {} cycles, {:.1} pJ total, characterization runs {}",
        run.batch.macs_per_cycle(),
        run.batch.makespan_cycles(),
        run.batch.total_energy_fj() / 1e3,
        run.metrics.counter("telemetry.characterize.runs"),
    );
    if let Some(h) = run.metrics.histogram("engine.queue.wait_cycles") {
        let _ = writeln!(
            out,
            "queue wait: p50 {:.0} / p95 {:.0} / p99 {:.0} cycles over {} dispatches (max {})",
            h.p50(),
            h.p95(),
            h.p99(),
            h.count,
            h.max,
        );
    }
    out
}

/// Machine-readable aggregate report for the CI baseline gate.  Every
/// deterministic field (outcome counts, cycles, MACs, energies, queue
/// counters) is gated by `repro diff`; wall-clock fields end in `_ns`
/// and are exempt.
pub fn report_json(run: &ServeRun) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("engine").begin_object();
    j.key("kind").string(&run.kind.to_string());
    j.key("queue_capacity").u64(run.queue_capacity as u64);
    j.end_object();

    j.key("jobs").begin_array();
    for outcome in run.batch.outcomes() {
        j.begin_object();
        j.key("name").string(outcome.name());
        j.key("outcome").string(outcome.label());
        match outcome {
            JobOutcome::Completed(r) => {
                j.key("network").string(r.report.network());
                j.key("cycles").u64(r.cycles());
                j.key("macs").u64(r.macs());
                j.key("macs_per_cycle").f64(r.macs_per_cycle());
                j.key("energy_fj").f64(r.energy_fj());
                j.key("queue_wait_cycles").u64(r.queue_wait_cycles);
                j.key("completion_cycle").u64(r.completion_cycle);
                if let Some(met) = r.deadline_met() {
                    j.key("deadline_met").bool(met);
                }
            }
            JobOutcome::Rejected { reason, .. } => {
                j.key("reason").string(&reason.to_string());
            }
            JobOutcome::Shed { reason, .. } => {
                j.key("reason").string(&reason.to_string());
            }
        }
        j.end_object();
    }
    j.end_array();

    j.key("aggregate").begin_object();
    j.key("submitted").u64(run.batch.submitted() as u64);
    j.key("completed").u64(run.batch.completed_count() as u64);
    j.key("rejected").u64(run.batch.rejected_count() as u64);
    j.key("shed").u64(run.batch.shed_count() as u64);
    j.key("makespan_cycles").u64(run.batch.makespan_cycles());
    j.key("total_macs").u64(run.batch.total_macs());
    j.key("macs_per_cycle").f64(run.batch.macs_per_cycle());
    j.key("total_energy_fj").f64(run.batch.total_energy_fj());
    j.key("peak_queue_depth").u64(run.batch.peak_queue_depth as u64);
    j.end_object();

    j.key("counters").begin_object();
    for name in [
        "engine.jobs.submitted",
        "engine.jobs.admitted",
        "engine.jobs.rejected",
        "engine.jobs.shed",
        "engine.jobs.completed",
        "engine.cache.hits",
        "engine.cache.misses",
        "telemetry.characterize.runs",
    ] {
        j.key(name).u64(run.metrics.counter(name));
    }
    j.key("engine.queue.peak_depth").i64(run.metrics.gauge("engine.queue.peak_depth"));
    j.end_object();

    // Admission → dispatch waits on the virtual batch clock: cycle-domain
    // and therefore deterministic and gated like every other count.
    j.key("queue_wait_cycles").begin_object();
    match run.metrics.histogram("engine.queue.wait_cycles") {
        Some(h) => {
            j.key("count").u64(h.count);
            j.key("max").u64(h.max);
            j.key("p50").f64(h.p50());
            j.key("p95").f64(h.p95());
            j.key("p99").f64(h.p99());
        }
        None => {
            j.key("count").u64(0);
        }
    }
    j.end_object();

    // Wall clock, reported but never gated (the `_ns` suffix).
    j.key("run_batch_ns")
        .u64(run.metrics.histogram("engine.run_batch_ns").map_or(0, |h| h.sum));
    j.end_object();
    let mut text = j.finish();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"{
      "engine": {"kind": "bsc", "quick": true, "queue_capacity": 4, "workers": 2},
      "jobs": [
        {"name": "lenet-nas", "network": "lenet5"},
        {"name": "lenet-8b", "network": "lenet5", "precision": "int8", "count": 2},
        {"name": "dead", "network": "lenet5", "precision": "int2", "deadline_cycles": 1}
      ]
    }"#;

    #[test]
    fn manifest_parses_and_expands_counts() {
        let m = parse_manifest(MANIFEST).unwrap();
        assert_eq!(m.engine.queue_capacity, 4);
        assert_eq!(m.engine.workers, Some(2));
        assert_eq!(m.jobs.len(), 4);
        assert_eq!(m.jobs[1].name, "lenet-8b#0");
        assert_eq!(m.jobs[2].name, "lenet-8b#1");
        // Repeats share the network allocation.
        assert!(SharedNetwork::ptr_eq(&m.jobs[1].network, &m.jobs[2].network));
        assert_eq!(m.jobs[3].deadline_cycles, Some(1));
    }

    #[test]
    fn malformed_manifests_are_rejected_with_context() {
        assert!(parse_manifest("{}").unwrap_err().contains("engine"));
        let bad_net = MANIFEST.replace("lenet5", "alexnet");
        assert!(parse_manifest(&bad_net).unwrap_err().contains("alexnet"));
        let bad_precision = MANIFEST.replace("int8", "int3");
        assert!(parse_manifest(&bad_precision).unwrap_err().contains("precision"));
    }

    #[test]
    fn serve_runs_the_manifest_end_to_end() {
        let run = serve(MANIFEST).unwrap();
        assert_eq!(run.batch.submitted(), 4);
        assert_eq!(run.batch.completed_count(), 3);
        assert_eq!(run.batch.rejected_count(), 1, "1-cycle deadline must be rejected");
        let json = report_json(&run);
        let doc = bsc_telemetry::parse_json(&json).expect("report is valid JSON");
        assert_eq!(
            doc.get("aggregate").and_then(|a| a.get("submitted")).and_then(|v| v.as_f64()),
            Some(4.0)
        );
        let text = render(&run);
        assert!(text.contains("BSC engine"), "{text}");
        // Queue waits surface in both the JSON gate and the text view.
        assert_eq!(
            doc.get("queue_wait_cycles").and_then(|q| q.get("count")).and_then(|v| v.as_f64()),
            Some(3.0)
        );
        assert!(text.contains("queue wait: p50"), "{text}");
    }
}
