//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--csv DIR] [--metrics-out FILE] [--trace-out FILE]
//!       [--bench-out FILE] [--no-timers]
//!       [table1|fig7a|fig7b|fig8a|fig8b|fig8b-gate|fig9|telemetry|simbench|mem|all]
//! repro trace [--perfetto-out FILE] [--svg-out FILE] [--trace-cap N]
//! repro serve <manifest.json> [--report-out FILE] [--slo-out FILE]
//!             [--dash-out FILE] [--events-out FILE]
//! repro online <manifest.json> [--workers N] [--report-out FILE]
//!              [--slo-out FILE] [--dash-out FILE] [--events-out FILE]
//!              [--perfetto-out FILE] [--profile-out FILE] [--folded-out FILE]
//! repro profile <manifest.json> [--workers N] [--profile-out FILE]
//!               [--folded-out FILE]
//! repro dse <manifest.json> [--workers N] [--bench-out FILE] [--csv DIR]
//!           [--svg-out FILE]
//! repro diff <baseline.json> <current.json> [--tol PCT] [--ignore PAT]...
//!            [--verbose]
//! ```
//!
//! * `--quick` uses a reduced vector length (8) and short activity runs —
//!   orderings hold but absolute numbers are noisier than the default
//!   paper-faithful configuration (vector length 32).
//! * `--csv DIR` additionally writes each experiment's raw data as CSV
//!   files into `DIR` (created if missing), ready for plotting.
//! * `--metrics-out FILE` writes the telemetry experiment's full JSON
//!   report (per-layer per-PE utilization, stall cycles, netlist toggle
//!   counts, metrics snapshot) to `FILE`.
//! * `--trace-out FILE` writes the telemetry experiment's captured
//!   cycle-event trace as JSON to `FILE`.
//! * `--no-timers` excludes wall-clock histograms from `--metrics-out`,
//!   making the document byte-identical across repeat runs.
//!
//! Passing `--metrics-out` / `--trace-out` without naming an experiment
//! runs just `telemetry` (which needs no characterization pass).
//!
//! * `simbench` benchmarks the netlist evaluator itself (full-sweep vs
//!   event-driven incremental) and reports the characterization
//!   wall-clock of a quick workbench; `--bench-out FILE` writes the
//!   machine-readable `BENCH_sim.json` baseline.
//! * `mem` sweeps the memory hierarchy (buffer size x DRAM bandwidth x
//!   precision x MAC kind) through the tiled double-buffered DMA
//!   schedule and reports stall cycles, DMA traffic and the roofline
//!   side of every point; `--bench-out FILE` writes the deterministic
//!   `BENCH_mem_baseline.json` the CI gate diffs at zero tolerance.  The
//!   sweep is analytic (no characterization), so `--quick` is accepted
//!   but changes nothing.
//! * `trace` runs the instrumented three-layer probe network on one
//!   shared trace ring and reconstructs a per-PE timeline;
//!   `--perfetto-out` writes Chrome trace-event JSON (open at
//!   <https://ui.perfetto.dev>), `--svg-out` a self-contained
//!   utilization heatmap, `--trace-cap` overrides the ring capacity.
//! * `serve` feeds a JSON job manifest to the multi-tenant batch
//!   inference engine (bounded queue, deadline-aware admission, shared
//!   characterization cache — see `docs/serving.md`) and prints per-job
//!   and aggregate reports; `--report-out` writes the deterministic JSON
//!   report the CI baseline gate diffs, `--slo-out` the per-tenant SLO
//!   report (latency quantiles, goodput, attainment, fJ-exact energy
//!   attribution) gated at `--tol 0`, `--dash-out` a self-contained
//!   HTML/SVG dashboard, and `--events-out` a JSONL structured event
//!   log stamped with span correlation IDs.
//! * `online` drives the deterministic discrete-event online serving
//!   simulator: open-loop arrival processes (Poisson / bursty / diurnal)
//!   over a multi-shard cluster of heterogeneous accelerators (see
//!   `docs/serving.md`).  `--workers N` overrides the manifest's worker
//!   count — reports are byte-identical at any worker count;
//!   `--report-out` writes the `BENCH_online_baseline.json` document the
//!   CI gate diffs at `--tol 0`, `--slo-out` the per-tenant SLO report,
//!   `--dash-out` the HTML dashboard, `--events-out` the JSONL decision
//!   log, and `--perfetto-out` a Chrome trace timeline with one track
//!   group per shard.
//!   Adding `--profile-out` (JSON) or `--folded-out` (folded stacks for
//!   flamegraph tools) runs the same simulation under the self-profiler
//!   and additionally writes the phase-attributed profile — the online
//!   report is unchanged by profiling.
//! * `profile` runs an online manifest under the simulator
//!   self-profiler and prints the phase table (calls, deterministic
//!   work units, wall clock) plus arrivals/sec.  The profile document's
//!   `counters` section is a pure function of the manifest
//!   (byte-identical at any worker count, gated by CI at `--tol 0`
//!   against `BENCH_profile_baseline.json`); its `wall` / `throughput`
//!   sections carry `*_ns` / `*_per_sec` names the differ never gates.
//!   See `docs/profiling.md`.
//! * `dse` sweeps dataflow × array geometry × memory config × precision
//!   × MAC kind from a JSON manifest (see `docs/dse.md`), evaluating
//!   every point's energy/latency/area through the calibrated PPA,
//!   schedule and roofline models over the work-stealing pool (reports
//!   byte-identical at any worker count), and extracts the 3-D Pareto
//!   front; `--bench-out` writes the `BENCH_dse_baseline.json` document
//!   the CI gate diffs at `--tol 0`, `--csv DIR` the per-point CSV, and
//!   `--svg-out` a self-contained Pareto scatter SVG.
//! * `serve`, `mem`, `online`, `profile` and `dse` validate their flags
//!   strictly: an
//!   unknown or out-of-place flag, or a flag missing its value, exits
//!   with status 2 and the usage text.
//! * `diff` compares two benchmark/metrics JSON files field-by-field and
//!   exits nonzero when a deterministic field drifted beyond the
//!   tolerance (`--tol 5` = ±5 %, the default).  Wall-clock fields
//!   (`*_ns`, `*_per_sec`, speedups) are reported but never gated;
//!   `--ignore PAT` adds more exempt patterns; `--verbose` also prints
//!   bit-identical fields.

use std::path::PathBuf;

use bsc_bench::diff::{diff_documents, render_diff, DiffOptions};
use bsc_bench::{
    dse, experiments, memexp, observatory, online, profile, serve, simbench, telemetry_probe,
    Workbench,
};
use bsc_mac::MacKind;

struct Options {
    quick: bool,
    csv_dir: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    folded_out: Option<PathBuf>,
    slo_out: Option<PathBuf>,
    dash_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    perfetto_out: Option<PathBuf>,
    svg_out: Option<PathBuf>,
    trace_cap: usize,
    no_timers: bool,
    workers: Option<usize>,
    tol: f64,
    ignore: Vec<String>,
    verbose: bool,
    which: String,
    /// Positional arguments after the experiment name (diff's two files).
    files: Vec<PathBuf>,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut csv_dir = None;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut bench_out = None;
    let mut report_out = None;
    let mut profile_out = None;
    let mut folded_out = None;
    let mut slo_out = None;
    let mut dash_out = None;
    let mut events_out = None;
    let mut perfetto_out = None;
    let mut svg_out = None;
    let mut trace_cap = observatory::DEFAULT_TRACE_CAPACITY;
    let mut no_timers = false;
    let mut workers = None;
    let mut seen_flags: Vec<String> = Vec::new();
    let mut tol = 5.0;
    let mut ignore = Vec::new();
    let mut verbose = false;
    let mut which = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg.starts_with("--") {
            seen_flags.push(arg.clone());
        }
        let path_arg = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            PathBuf::from(
                args.next()
                    .unwrap_or_else(|| die_usage(&format!("{flag} requires a file argument"))),
            )
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--no-timers" => no_timers = true,
            "--verbose" => verbose = true,
            "--csv" => csv_dir = Some(path_arg("--csv", &mut args)),
            "--metrics-out" => metrics_out = Some(path_arg("--metrics-out", &mut args)),
            "--trace-out" => trace_out = Some(path_arg("--trace-out", &mut args)),
            "--bench-out" => bench_out = Some(path_arg("--bench-out", &mut args)),
            "--report-out" => report_out = Some(path_arg("--report-out", &mut args)),
            "--profile-out" => profile_out = Some(path_arg("--profile-out", &mut args)),
            "--folded-out" => folded_out = Some(path_arg("--folded-out", &mut args)),
            "--slo-out" => slo_out = Some(path_arg("--slo-out", &mut args)),
            "--dash-out" => dash_out = Some(path_arg("--dash-out", &mut args)),
            "--events-out" => events_out = Some(path_arg("--events-out", &mut args)),
            "--perfetto-out" => perfetto_out = Some(path_arg("--perfetto-out", &mut args)),
            "--svg-out" => svg_out = Some(path_arg("--svg-out", &mut args)),
            "--trace-cap" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| die_usage("--trace-cap requires a number argument"));
                trace_cap = n
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--trace-cap: `{n}` is not a number")));
            }
            "--workers" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| die_usage("--workers requires a number argument"));
                let parsed: usize = n
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--workers: `{n}` is not a number")));
                if parsed == 0 {
                    die("--workers: must be positive");
                }
                workers = Some(parsed);
            }
            "--tol" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| die_usage("--tol requires a percentage argument"));
                tol = n
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--tol: `{n}` is not a number")));
            }
            "--ignore" => {
                ignore.push(
                    args.next()
                        .unwrap_or_else(|| die_usage("--ignore requires a pattern argument")),
                );
            }
            other if !other.starts_with("--") => {
                if which.is_none() {
                    which = Some(other.to_owned());
                } else {
                    files.push(PathBuf::from(other));
                }
            }
            other => die_usage(&format!("unknown flag `{other}`")),
        }
    }
    // Telemetry outputs without an explicit experiment mean "run the
    // telemetry probe"; a bench output alone means "run simbench"; trace
    // outputs alone mean "run the observatory" — all are self-contained
    // and skip characterization.
    let default = if metrics_out.is_some() || trace_out.is_some() {
        "telemetry"
    } else if bench_out.is_some() {
        "simbench"
    } else if perfetto_out.is_some() || svg_out.is_some() {
        "trace"
    } else {
        "all"
    };
    let which = which.unwrap_or_else(|| default.to_owned());
    // `serve`, `mem` and `online` accept only their own flags — a stray
    // flag silently changing nothing is how baseline-generation runs go
    // wrong, so it is a usage error instead.
    if let Some(allowed) = subcommand_flags(&which) {
        for flag in &seen_flags {
            if !allowed.contains(&flag.as_str()) {
                die_usage(&format!("`repro {which}` does not accept `{flag}`"));
            }
        }
    }
    Options {
        quick,
        csv_dir,
        metrics_out,
        trace_out,
        bench_out,
        report_out,
        profile_out,
        folded_out,
        slo_out,
        dash_out,
        events_out,
        perfetto_out,
        svg_out,
        trace_cap,
        no_timers,
        workers,
        tol,
        ignore,
        verbose,
        which,
        files,
    }
}

/// The exact flag set each strict subcommand accepts; `None` leaves the
/// subcommand on the legacy permissive path.
fn subcommand_flags(which: &str) -> Option<&'static [&'static str]> {
    match which {
        "serve" => Some(&["--report-out", "--slo-out", "--dash-out", "--events-out"]),
        "online" => Some(&[
            "--workers",
            "--report-out",
            "--slo-out",
            "--dash-out",
            "--events-out",
            "--perfetto-out",
            "--profile-out",
            "--folded-out",
        ]),
        "profile" => Some(&["--workers", "--profile-out", "--folded-out"]),
        "mem" => Some(&["--quick", "--csv", "--bench-out"]),
        "dse" => Some(&["--workers", "--bench-out", "--csv", "--svg-out"]),
        _ => None,
    }
}

fn main() {
    let opts = parse_args();
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
    }

    let needs_workbench = !matches!(
        opts.which.as_str(),
        "table1"
            | "fig8b-gate"
            | "extensions"
            | "telemetry"
            | "simbench"
            | "mem"
            | "dse"
            | "trace"
            | "serve"
            | "online"
            | "profile"
            | "diff"
    );
    let wb = if needs_workbench {
        eprintln!(
            "characterizing BSC/LPC/HPS netlists ({} mode)...",
            if opts.quick { "quick" } else { "paper" }
        );
        let wb = if opts.quick { Workbench::quick() } else { Workbench::paper() }
            .unwrap_or_else(|e| die(&format!("characterization failed: {e}")));
        // The workbench times itself through its bsc-telemetry registry.
        eprintln!(
            "characterized in {:.4}s (compiled-tape incremental evaluator, batch-sharded)\n",
            wb.characterize_wall_ns() as f64 / 1e9
        );
        Some(wb)
    } else {
        None
    };
    let wb = wb.as_ref();

    let write_csv = |name: &str, data: String| {
        if let Some(dir) = &opts.csv_dir {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, data) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_table1 = || {
        print!("{}", experiments::render_table1());
        write_csv("table1.csv", experiments::table1_csv());
    };
    let run_fig7 = |wb: &Workbench, which: &str| {
        let pts = experiments::fig7_sweep(wb);
        if which != "fig7b" {
            print!("{}", experiments::render_fig7a(&pts));
        }
        if which != "fig7a" {
            print!("{}", experiments::render_fig7b(&pts));
        }
        write_csv("fig7_sweep.csv", experiments::fig7_csv(&pts));
    };
    let run_fig8a = |wb: &Workbench| match experiments::fig8a(wb) {
        Ok(rows) => {
            print!("{}", experiments::render_fig8a(&rows));
            write_csv("fig8a.csv", experiments::fig8a_csv(&rows));
        }
        Err(e) => die(&format!("fig8a failed: {e}")),
    };
    let run_fig8b = |wb: &Workbench| match experiments::fig8b(wb) {
        Ok(rows) => {
            print!("{}", experiments::render_fig8b(&rows));
            write_csv("fig8b.csv", experiments::fig8b_csv(&rows));
        }
        Err(e) => die(&format!("fig8b failed: {e}")),
    };
    let run_fig9 = |wb: &Workbench| match experiments::fig9(wb) {
        Ok(rows) => {
            print!("{}", experiments::render_fig9(&rows));
            write_csv("fig9.csv", experiments::fig9_csv(&rows));
        }
        Err(e) => die(&format!("fig9 failed: {e}")),
    };
    let run_telemetry = || {
        let report = telemetry_probe::telemetry_report(MacKind::Bsc)
            .unwrap_or_else(|e| die(&format!("telemetry probe failed: {e}")));
        print!("{}", telemetry_probe::render_telemetry(&report));
        if let Some(path) = &opts.metrics_out {
            let json = telemetry_probe::telemetry_json(&report, opts.no_timers);
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = &opts.trace_out {
            let json = telemetry_probe::telemetry_trace_json(&report);
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_simbench = || {
        eprintln!("benchmarking the netlist evaluator (full sweep vs incremental)...");
        let (cycles, length) = if opts.quick { (64, 4) } else { (256, 8) };
        let reports: Vec<_> = MacKind::ALL
            .into_iter()
            .map(|kind| simbench::run(kind, length, cycles))
            .collect();
        print!("{}", simbench::render(&reports));
        eprintln!("\ntiming a quick workbench characterization...");
        let wb_ns = match Workbench::quick() {
            Ok(wb) => {
                let ns = wb.characterize_wall_ns();
                println!(
                    "Workbench::quick() characterization wall-clock: {}",
                    bsc_bench::timing::fmt_ns(ns as f64)
                );
                Some(ns)
            }
            Err(e) => {
                eprintln!("workbench timing skipped: {e}");
                None
            }
        };
        if let Some(path) = &opts.bench_out {
            let json = simbench::to_json(&reports, wb_ns);
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_mem = || {
        eprintln!("sweeping the memory hierarchy (buffers x bandwidth x precision x kind)...");
        let points = memexp::sweep().unwrap_or_else(|e| die(&format!("mem sweep failed: {e}")));
        print!("{}", memexp::render(&points));
        write_csv("mem_sweep.csv", memexp::to_csv(&points));
        if let Some(path) = &opts.bench_out {
            if let Err(e) = std::fs::write(path, memexp::to_json(&points)) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_trace = || {
        eprintln!("running the instrumented probe network (trace observatory)...");
        let run = observatory::observe(MacKind::Bsc, opts.trace_cap)
            .unwrap_or_else(|e| die(&format!("trace observatory failed: {e}")));
        print!("{}", observatory::render_observatory(&run));
        if let Some(path) = &opts.perfetto_out {
            let json = observatory::run_perfetto_json(&run);
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {} (open at https://ui.perfetto.dev)", path.display());
        }
        if let Some(path) = &opts.svg_out {
            let svg = observatory::run_svg(&run);
            if let Err(e) = std::fs::write(path, svg) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_serve = || {
        let [manifest] = opts.files.as_slice() else {
            die("serve requires exactly one file argument: <manifest.json>");
        };
        let text = std::fs::read_to_string(manifest)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", manifest.display())));
        let run = serve::serve(&text).unwrap_or_else(|e| die(&e));
        print!("{}", serve::render(&run));
        let write_out = |path: &Option<PathBuf>, data: String| {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, data) {
                    die(&format!("cannot write {}: {e}", path.display()));
                }
                eprintln!("wrote {}", path.display());
            }
        };
        write_out(&opts.report_out, serve::report_json(&run));
        write_out(&opts.slo_out, serve::slo_json(&run));
        write_out(&opts.dash_out, bsc_bench::dashboard::dashboard_html(&run));
        write_out(&opts.events_out, serve::events_jsonl(&run));
    };

    let write_out = |path: &Option<PathBuf>, data: String| {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, data) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
    };

    let run_online = || {
        let [manifest] = opts.files.as_slice() else {
            die_usage("online requires exactly one file argument: <manifest.json>");
        };
        let text = std::fs::read_to_string(manifest)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", manifest.display())));
        // A profile output upgrades the run to the self-profiled path;
        // the online report itself is identical either way.
        let profiling = opts.profile_out.is_some() || opts.folded_out.is_some();
        let run = if profiling {
            let p = profile::profile(&text, opts.workers).unwrap_or_else(|e| die(&e));
            print!("{}", online::render(&p.run));
            print!("{}", profile::render(&p));
            write_out(&opts.profile_out, profile::profile_document(&p));
            write_out(&opts.folded_out, profile::folded(&p));
            p.run
        } else {
            let run = online::online(&text, opts.workers).unwrap_or_else(|e| die(&e));
            print!("{}", online::render(&run));
            run
        };
        write_out(&opts.report_out, online::report_json(&run));
        write_out(&opts.slo_out, online::slo_json(&run));
        write_out(&opts.dash_out, bsc_bench::dashboard::online_dashboard_html(&run));
        write_out(&opts.events_out, online::events_jsonl(&run));
        write_out(&opts.perfetto_out, online::perfetto_json(&run));
    };

    let run_dse = || {
        let [manifest] = opts.files.as_slice() else {
            die_usage("dse requires exactly one file argument: <manifest.json>");
        };
        let text = std::fs::read_to_string(manifest)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", manifest.display())));
        eprintln!("sweeping dataflow x geometry x memory x precision x kind...");
        let run = dse::dse(&text, opts.workers).unwrap_or_else(|e| die(&e));
        print!("{}", dse::render(&run));
        write_csv("dse_sweep.csv", dse::to_csv(&run));
        write_out(&opts.bench_out, dse::to_json(&run));
        write_out(&opts.svg_out, bsc_bench::dashboard::dse_pareto_svg(&run));
    };

    let run_profile = || {
        let [manifest] = opts.files.as_slice() else {
            die_usage("profile requires exactly one file argument: <manifest.json>");
        };
        let text = std::fs::read_to_string(manifest)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", manifest.display())));
        eprintln!("profiling the online simulator (deterministic counters + wall clock)...");
        let p = profile::profile(&text, opts.workers).unwrap_or_else(|e| die(&e));
        print!("{}", profile::render(&p));
        write_out(&opts.profile_out, profile::profile_document(&p));
        write_out(&opts.folded_out, profile::folded(&p));
    };

    let run_diff = || {
        let [baseline, current] = opts.files.as_slice() else {
            die("diff requires exactly two file arguments: <baseline.json> <current.json>");
        };
        let read = |p: &std::path::Path| {
            std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", p.display())))
        };
        let mut diff_opts = DiffOptions { tolerance: opts.tol / 100.0, ..DiffOptions::default() };
        diff_opts.ignore.extend(opts.ignore.iter().cloned());
        let report = diff_documents(&read(baseline), &read(current), &diff_opts)
            .unwrap_or_else(|e| die(&format!("malformed JSON: {e}")));
        print!("{}", render_diff(&report, opts.verbose));
        for row in report.missing() {
            eprintln!("warning: field `{}` present on only one side", row.path);
        }
        if report.regressed() {
            std::process::exit(2);
        }
    };

    match opts.which.as_str() {
        "table1" => run_table1(),
        "simbench" => run_simbench(),
        "mem" => run_mem(),
        "dse" => run_dse(),
        "trace" => run_trace(),
        "serve" => run_serve(),
        "online" => run_online(),
        "profile" => run_profile(),
        "diff" => run_diff(),
        "extensions" => match experiments::render_extensions() {
            Ok(text) => print!("{text}"),
            Err(e) => die(&format!("extensions report failed: {e}")),
        },
        "fig8b-gate" => {
            let (pes, length, steps) = if opts.quick { (2, 4, 24) } else { (4, 16, 48) };
            eprintln!("building and characterizing gate-level arrays ({pes} PEs x L={length})...");
            match experiments::fig8b_gate_level(pes, length, steps) {
                Ok(rows) => {
                    print!("{}", experiments::render_fig8b_gate_level(&rows, pes));
                    write_csv("fig8b_gate.csv", experiments::fig8b_csv(&rows));
                }
                Err(e) => die(&format!("fig8b-gate failed: {e}")),
            }
        }
        "fig7a" | "fig7b" => run_fig7(wb.expect("workbench"), &opts.which),
        "fig8a" => run_fig8a(wb.expect("workbench")),
        "fig8b" => run_fig8b(wb.expect("workbench")),
        "fig9" => run_fig9(wb.expect("workbench")),
        "telemetry" => run_telemetry(),
        "all" => {
            let wb = wb.expect("workbench");
            run_table1();
            println!();
            run_fig7(wb, "all");
            println!();
            run_fig8a(wb);
            println!();
            run_fig8b(wb);
            println!();
            run_fig9(wb);
            println!();
            run_telemetry();
        }
        other => die(&format!(
            "unknown experiment `{other}` (expected table1|fig7a|fig7b|fig8a|fig8b|fig8b-gate|fig9|telemetry|simbench|mem|dse|trace|serve|online|profile|diff|extensions|all)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

const USAGE: &str = "\
usage:
  repro [--quick] [--csv DIR] [--metrics-out FILE] [--trace-out FILE]
        [--bench-out FILE] [--no-timers]
        [table1|fig7a|fig7b|fig8a|fig8b|fig8b-gate|fig9|telemetry|simbench|mem|all]
  repro trace [--perfetto-out FILE] [--svg-out FILE] [--trace-cap N]
  repro serve <manifest.json> [--report-out FILE] [--slo-out FILE]
              [--dash-out FILE] [--events-out FILE]
  repro online <manifest.json> [--workers N] [--report-out FILE] [--slo-out FILE]
               [--dash-out FILE] [--events-out FILE] [--perfetto-out FILE]
               [--profile-out FILE] [--folded-out FILE]
  repro profile <manifest.json> [--workers N] [--profile-out FILE]
                [--folded-out FILE]
  repro dse <manifest.json> [--workers N] [--bench-out FILE] [--csv DIR]
            [--svg-out FILE]
  repro diff <baseline.json> <current.json> [--tol PCT] [--ignore PAT]... [--verbose]";

/// A malformed command line: the message, the usage block, exit 2 (so
/// CI distinguishes \"you called it wrong\" from a failing run).
fn die_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}
