//! Shared experiment drivers for the `repro` harness binary and the
//! self-timed benches (see [`timing`]).
//!
//! Each `figN`/`table1` function regenerates the data behind one table or
//! figure of the paper and returns it as plain structs; `render_*`
//! companions produce the aligned-text views the harness prints, with the
//! paper's published values alongside for comparison (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dashboard;
pub mod diff;
pub mod dse;
pub mod experiments;
pub mod memexp;
pub mod observatory;
pub mod online;
pub mod profile;
pub mod serve;
pub mod simbench;
pub mod telemetry_probe;
pub mod timing;
pub mod workbench;

pub use workbench::Workbench;
