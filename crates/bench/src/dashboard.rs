//! Self-contained HTML/SVG serving dashboards for `repro serve` and
//! `repro online`.
//!
//! [`dashboard_html`] renders one [`ServeRun`](crate::serve::ServeRun)
//! and [`online_dashboard_html`] one
//! [`OnlineRun`](crate::online::OnlineRun); both share the same
//! SLO-report-driven body via [`slo_dashboard_document`] and produce a
//! single static HTML document with **zero external assets** —
//! no scripts, no fonts, no stylesheets beyond an inline `<style>` —
//! so the file opens identically offline and diffs cleanly:
//!
//! * a per-tenant latency quantile table (the integer p50/p95/p99 from
//!   the SLO report's quantile sketch) with goodput, energy and SLO
//!   verdicts;
//! * one `<svg>` time-series panel **per tenant**: completed jobs per
//!   tumbling window as bars, shed decisions overlaid in red (the CI
//!   gate counts exactly one `<svg>` element per tenant);
//! * a tenant × precision energy heatmap as an HTML table whose cell
//!   shading encodes each cell's share of the batch energy.
//!
//! The online dashboard adds the cluster observatory between the tenant
//! panels and the heatmap: a per-shard tally table (with the peak
//! outstanding / peak backlog high-water marks), the admission-ladder
//! funnel table, and one depth-observatory `<svg>` **per shard**
//! (outstanding jobs as bars, backlog overlaid) — so its total `<svg>`
//! count is tenants + shards.
//!
//! Every number in the document comes from the deterministic SLO
//! report; nothing reads wall time, so the HTML is byte-identical at
//! any worker count.

use std::fmt::Write as _;

use crate::dse::DseRun;
use crate::online::OnlineRun;
use crate::serve::ServeRun;

/// Escapes `&`, `<`, `>` and `"` for HTML text and attribute positions.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// SVG panel geometry (CSS pixels).
const CHART_W: u64 = 640;
const CHART_H: u64 = 96;
const CHART_PAD: u64 = 2;

/// One tenant's windowed activity as an `<svg>` bar chart: completed
/// jobs per window (blue), shed decisions overlaid (red).  `n_windows`
/// is the batch-wide axis length so panels of different tenants align.
fn tenant_svg(t: &bsc_accel::TenantSlo, n_windows: u64) -> String {
    let n = n_windows.max(1);
    let peak = t.windows.iter().map(|w| w.completed + w.shed).max().unwrap_or(0).max(1);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" role="img" aria-label="windowed activity of tenant {name}">"#,
        w = CHART_W,
        h = CHART_H,
        name = esc(t.tenant.as_str()),
    );
    let _ = write!(
        svg,
        r##"<rect x="0" y="0" width="{CHART_W}" height="{CHART_H}" fill="#f7f7f8"/>"##
    );
    // Integer-arithmetic layout: x positions and heights are exact
    // functions of the window data, no float formatting anywhere.
    let inner_h = CHART_H - 2 * CHART_PAD;
    for w in &t.windows {
        let x0 = CHART_PAD + w.window * (CHART_W - 2 * CHART_PAD) / n;
        let x1 = CHART_PAD + (w.window + 1) * (CHART_W - 2 * CHART_PAD) / n;
        let width = (x1 - x0).saturating_sub(1).max(1);
        let done_h = w.completed * inner_h / peak;
        if done_h > 0 {
            let _ = write!(
                svg,
                r##"<rect x="{x0}" y="{y}" width="{width}" height="{done_h}" fill="#4878b0"><title>window {win}: {c} completed</title></rect>"##,
                y = CHART_H - CHART_PAD - done_h,
                win = w.window,
                c = w.completed,
            );
        }
        let shed_h = w.shed * inner_h / peak;
        if shed_h > 0 {
            let _ = write!(
                svg,
                r##"<rect x="{x0}" y="{y}" width="{width}" height="{shed_h}" fill="#c04848"><title>window {win}: {s} shed</title></rect>"##,
                y = CHART_H - CHART_PAD - done_h - shed_h,
                win = w.window,
                s = w.shed,
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// One shard's depth observatory series as an `<svg>` chart on the
/// sampled virtual-clock grid: outstanding jobs as blue bars, the
/// backlog (cycles of queued work) overlaid as red ticks.  Each series
/// scales to its own peak; the exact values ride in `<title>` tooltips.
fn shard_depth_svg(d: &bsc_accel::ShardDepth, stride: u64) -> String {
    let n = d.samples.len().max(1) as u64;
    let peak_out = d.samples.iter().map(|s| s.outstanding).max().unwrap_or(0).max(1);
    let peak_back = d.samples.iter().map(|s| s.backlog_cycles).max().unwrap_or(0).max(1);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" role="img" aria-label="queue depth of shard {name} (stride {stride} cycles)">"#,
        w = CHART_W,
        h = CHART_H,
        name = esc(&d.shard),
    );
    let _ = write!(
        svg,
        r##"<rect x="0" y="0" width="{CHART_W}" height="{CHART_H}" fill="#f7f7f8"/>"##
    );
    let inner_h = CHART_H - 2 * CHART_PAD;
    for (i, s) in d.samples.iter().enumerate() {
        let i = i as u64;
        let x0 = CHART_PAD + i * (CHART_W - 2 * CHART_PAD) / n;
        let x1 = CHART_PAD + (i + 1) * (CHART_W - 2 * CHART_PAD) / n;
        let width = (x1 - x0).saturating_sub(1).max(1);
        let out_h = s.outstanding * inner_h / peak_out;
        if out_h > 0 {
            let _ = write!(
                svg,
                r##"<rect x="{x0}" y="{y}" width="{width}" height="{out_h}" fill="#4878b0"><title>cycle {cyc}: {o} outstanding</title></rect>"##,
                y = CHART_H - CHART_PAD - out_h,
                cyc = s.cycle,
                o = s.outstanding,
            );
        }
        let back_h = s.backlog_cycles * inner_h / peak_back;
        if back_h > 0 {
            let _ = write!(
                svg,
                r##"<rect x="{x0}" y="{y}" width="{width}" height="2" fill="#c04848"><title>cycle {cyc}: backlog {b} cycles</title></rect>"##,
                y = (CHART_H - CHART_PAD).saturating_sub(back_h).max(CHART_PAD),
                cyc = s.cycle,
                b = s.backlog_cycles,
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// The online dashboard's cluster sections: the per-shard tally table
/// (with the peak outstanding / peak backlog high-water marks), the
/// admission-ladder funnel table, and one depth-observatory `<svg>` per
/// shard.
fn cluster_sections(r: &bsc_accel::OnlineReport) -> String {
    let mut html = String::new();
    // --- Per-shard tallies and high-water marks --------------------------
    html.push_str("<table>\n<caption>Per-shard tallies and high-water marks</caption>\n");
    html.push_str(
        "<tr><th>shard</th><th>kind</th><th>completed</th><th>rejected</th><th>shed</th>\
         <th>busy (cyc)</th><th>peak outstanding</th><th>peak backlog (cyc)</th>\
         <th>energy (pJ)</th></tr>\n",
    );
    for s in &r.shards {
        let _ = writeln!(
            html,
            "<tr><td>{name}</td><td>{kind}</td><td>{done}</td><td>{rej}</td><td>{shed}</td>\
             <td>{busy}</td><td>{peak}</td><td>{backlog}</td><td>{pj:.1}</td></tr>",
            name = esc(&s.name),
            kind = s.kind,
            done = s.completed,
            rej = s.rejected,
            shed = s.shed,
            busy = s.busy_cycles,
            peak = s.peak_outstanding,
            backlog = s.peak_backlog_cycles,
            pj = s.energy_fj as f64 / 1e3,
        );
    }
    html.push_str("</table>\n");

    // --- Admission-ladder funnel -----------------------------------------
    html.push_str(
        "<table>\n<caption>Admission ladder (per-stage outcome of every offered arrival)</caption>\n",
    );
    html.push_str(
        "<tr><th>shard</th><th>offered</th><th>queue full</th><th>overloaded</th>\
         <th>deadline infeasible</th><th>shed</th><th>dispatched</th></tr>\n",
    );
    for f in &r.funnel {
        let _ = writeln!(
            html,
            "<tr><td>{name}</td><td>{off}</td><td>{qf}</td><td>{ov}</td><td>{di}</td>\
             <td>{sh}</td><td>{disp}</td></tr>",
            name = esc(&f.shard),
            off = f.offered,
            qf = f.queue_full,
            ov = f.overloaded,
            di = f.deadline_infeasible,
            sh = f.shed_deadline,
            disp = f.dispatched,
        );
    }
    html.push_str("</table>\n");

    // --- Depth observatory: exactly one <svg> per shard ------------------
    for d in &r.depth {
        let _ = writeln!(
            html,
            "<section>\n<h2>{name} — outstanding (blue) / backlog (red), every {stride} cycles</h2>\n{svg}\n</section>",
            name = esc(&d.shard),
            stride = r.depth_stride_cycles,
            svg = shard_depth_svg(d, r.depth_stride_cycles),
        );
    }
    html
}

/// Renders the `repro serve` dashboard.  See the module docs for
/// contents and determinism guarantees.
pub fn dashboard_html(run: &ServeRun) -> String {
    let slo = &run.batch.slo;
    let summary = format!(
        "{kind} engine &middot; queue capacity {cap} &middot; {sub} submitted / {done} completed / {rej} rejected / {shed} shed &middot; makespan {span} cycles &middot; window width {win} cycles",
        kind = esc(&run.kind.to_string()),
        cap = run.queue_capacity,
        sub = run.batch.submitted(),
        done = run.batch.completed_count(),
        rej = run.batch.rejected_count(),
        shed = run.batch.shed_count(),
        span = run.batch.makespan_cycles(),
        win = slo.window_width_cycles,
    );
    slo_dashboard_document(&summary, "batch", slo, "")
}

/// Renders the `repro online` dashboard: the same SLO-driven body under
/// a cluster summary line naming the dispatch policy and every shard.
pub fn online_dashboard_html(run: &OnlineRun) -> String {
    let r = &run.report;
    let shards = run
        .shard_names
        .iter()
        .map(|n| esc(n))
        .collect::<Vec<_>>()
        .join(", ");
    let summary = format!(
        "{policy} dispatch over {n} shards ({shards}) &middot; seed {seed} &middot; {sub} submitted / {done} completed / {rej} rejected / {shed} shed &middot; makespan {span} cycles &middot; window width {win} cycles",
        policy = esc(&r.policy.to_string()),
        n = run.shard_names.len(),
        seed = r.seed,
        sub = r.submitted,
        done = r.completed,
        rej = r.rejected,
        shed = r.shed,
        span = r.makespan_cycles,
        win = r.slo.window_width_cycles,
    );
    slo_dashboard_document(&summary, "cluster", &r.slo, &cluster_sections(r))
}

/// Shared document shell and SLO-report body: summary line, per-tenant
/// quantile table, one `<svg>` per tenant, tenant &times; precision
/// energy heatmap.  `total_label` names the energy total row
/// ("batch" for serve, "cluster" for online); `extra` is injected
/// verbatim between the tenant panels and the heatmap (the online
/// dashboard's cluster sections — empty for serve).
fn slo_dashboard_document(
    summary: &str,
    total_label: &str,
    slo: &bsc_accel::SloReport,
    extra: &str,
) -> String {
    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str("<title>BSC serving dashboard</title>\n<style>\n");
    html.push_str(concat!(
        "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n",
        "table{border-collapse:collapse;margin:1em 0}\n",
        "th,td{border:1px solid #ccc;padding:.3em .6em;text-align:right}\n",
        "th:first-child,td:first-child{text-align:left}\n",
        "caption{text-align:left;font-weight:600;padding:.3em 0}\n",
        ".met{color:#1a7a2e}.missed{color:#b01818;font-weight:600}.none{color:#777}\n",
        "section{margin:1.5em 0}\n",
    ));
    html.push_str("</style>\n</head>\n<body>\n");

    let _ = writeln!(html, "<h1>BSC serving dashboard</h1>");
    let _ = writeln!(html, "<p>{summary}</p>");

    // --- Per-tenant latency quantile table -------------------------------
    html.push_str("<table>\n<caption>Per-tenant latency and SLO attainment</caption>\n");
    html.push_str(
        "<tr><th>tenant</th><th>submitted</th><th>completed</th><th>rejected</th><th>shed</th>\
         <th>p50 (cyc)</th><th>p95 (cyc)</th><th>p99 (cyc)</th><th>max (cyc)</th>\
         <th>goodput</th><th>energy (pJ)</th><th>SLO</th></tr>\n",
    );
    for t in &slo.tenants {
        let (class, verdict) = match &t.attainment {
            Some(a) if a.attained => ("met", "met".to_string()),
            Some(a) => ("missed", format!("missed (burn {:.1}×)", a.burn_rate)),
            None => ("none", "—".to_string()),
        };
        let _ = writeln!(
            html,
            "<tr><td>{name}</td><td>{sub}</td><td>{done}</td><td>{rej}</td><td>{shed}</td>\
             <td>{p50}</td><td>{p95}</td><td>{p99}</td><td>{max}</td>\
             <td>{good:.3}</td><td>{pj:.1}</td><td class=\"{class}\">{verdict}</td></tr>",
            name = esc(t.tenant.as_str()),
            sub = t.submitted,
            done = t.completed,
            rej = t.rejected,
            shed = t.shed,
            p50 = t.latency.p50,
            p95 = t.latency.p95,
            p99 = t.latency.p99,
            max = t.latency.max,
            good = t.goodput,
            pj = t.energy_fj as f64 / 1e3,
        );
    }
    html.push_str("</table>\n");

    // --- Windowed time series: exactly one <svg> per tenant --------------
    let n_windows = slo
        .tenants
        .iter()
        .flat_map(|t| t.windows.iter())
        .map(|w| w.window + 1)
        .max()
        .unwrap_or(1);
    for t in &slo.tenants {
        let _ = writeln!(
            html,
            "<section>\n<h2>{name} — completed (blue) / shed (red) per window</h2>\n{svg}\n</section>",
            name = esc(t.tenant.as_str()),
            svg = tenant_svg(t, n_windows),
        );
    }

    html.push_str(extra);

    // --- Tenant × precision energy heatmap -------------------------------
    let mut precisions: Vec<&str> = Vec::new();
    for t in &slo.tenants {
        for (p, _) in &t.energy_by_precision {
            if !precisions.contains(&p.as_str()) {
                precisions.push(p);
            }
        }
    }
    precisions.sort_unstable();
    let total = slo.total_energy_fj().max(1);
    let _ = write!(
        html,
        "<table>\n<caption>Energy attribution by tenant &times; precision (fJ, cell shading = share of {total_label} energy)</caption>\n<tr><th>tenant</th>"
    );
    for p in &precisions {
        let _ = write!(html, "<th>{}</th>", esc(p));
    }
    html.push_str("<th>total</th></tr>\n");
    for t in &slo.tenants {
        let _ = write!(html, "<tr><td>{}</td>", esc(t.tenant.as_str()));
        for p in &precisions {
            let fj = t
                .energy_by_precision
                .iter()
                .find(|(name, _)| name == p)
                .map_or(0, |(_, fj)| *fj);
            // Shade by integer share: alpha in 0..=255 from the exact
            // fJ ratio, so the color is as deterministic as the number.
            let alpha = (fj * 255 / total) as u8;
            let _ = write!(
                html,
                "<td style=\"background:rgba(72,120,176,{a:.3})\">{fj}</td>",
                a = alpha as f64 / 255.0,
            );
        }
        let _ = writeln!(html, "<td>{}</td></tr>", t.energy_fj);
    }
    let _ = writeln!(
        html,
        "<tr><td>{total_label} total</td><td colspan=\"{}\"></td><td>{}</td></tr>",
        precisions.len(),
        slo.total_energy_fj(),
    );
    html.push_str("</table>\n</body>\n</html>\n");
    html
}

/// Pareto scatter geometry (CSS pixels).
const DSE_W: u64 = 640;
const DSE_H: u64 = 420;
const DSE_PAD: u64 = 40;

/// Maps `v` into `[lo, hi]` on a log axis spanning `[min, max]`, in
/// integer pixels (deterministic layout; exact values ride in
/// `<title>` tooltips).
fn log_pos(v: f64, min: f64, max: f64, lo: u64, hi: u64) -> u64 {
    let span = (max / min).ln();
    if span.is_nan() || span <= 0.0 {
        return (lo + hi) / 2;
    }
    let t = ((v / min).ln() / span).clamp(0.0, 1.0);
    lo + (t * (hi - lo) as f64).round() as u64
}

/// Renders the `repro dse` Pareto scatter as one self-contained `<svg>`
/// document: every sweep point on log energy (x) × log latency (y)
/// axes, circle radius encoding array area, Pareto-front points filled
/// blue and dominated points grey, bandwidth-bound points ringed red.
/// Exact objective values sit in `<title>` tooltips; nothing references
/// external assets and nothing reads wall time, so the file is
/// byte-identical at any worker count.
pub fn dse_pareto_svg(run: &DseRun) -> String {
    let pts = &run.points;
    let min_max = |f: fn(&crate::dse::DsePoint) -> f64| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in pts {
            let v = f(p);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo.max(1e-12), hi.max(1e-12))
    };
    let (e_min, e_max) = min_max(|p| p.energy_fj);
    let (l_min, l_max) = min_max(|p| p.total_cycles as f64);
    let (a_min, a_max) = min_max(|p| p.area_um2);
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w} {h}" width="{w}" height="{h}" role="img" aria-label="DSE Pareto scatter: {n} points, {k} on the front">"#,
        w = DSE_W,
        h = DSE_H,
        n = pts.len(),
        k = run.pareto_count(),
    );
    let _ = write!(svg, r##"<rect x="0" y="0" width="{DSE_W}" height="{DSE_H}" fill="#f7f7f8"/>"##);
    // Axis frame and labels (energy grows rightward, latency downward
    // is inverted so "better" is bottom-left... keep latency growing
    // upward-inverted: smaller latency near the bottom axis).
    let _ = write!(
        svg,
        r##"<rect x="{x}" y="{y}" width="{iw}" height="{ih}" fill="none" stroke="#bbb"/>"##,
        x = DSE_PAD,
        y = DSE_PAD / 2,
        iw = DSE_W - DSE_PAD - DSE_PAD / 2,
        ih = DSE_H - DSE_PAD - DSE_PAD / 2,
    );
    let _ = write!(
        svg,
        r##"<text x="{x}" y="{y}" font-size="12" fill="#555">energy (log) &#8594;</text>"##,
        x = DSE_W / 2 - 40,
        y = DSE_H - 8,
    );
    let _ = write!(
        svg,
        r##"<text x="12" y="{y}" font-size="12" fill="#555" transform="rotate(-90 12 {y})">latency (log) &#8594;</text>"##,
        y = DSE_H / 2,
    );
    // Dominated points first so the front renders on top.
    for front_pass in [false, true] {
        for p in pts {
            if p.pareto != front_pass {
                continue;
            }
            let cx = log_pos(p.energy_fj, e_min, e_max, DSE_PAD + 8, DSE_W - DSE_PAD / 2 - 8);
            let cy = log_pos(
                p.total_cycles as f64,
                l_min,
                l_max,
                DSE_PAD / 2 + 8,
                DSE_H - DSE_PAD - 8,
            );
            // Radius 3..=9 px from the point's share of the log area span.
            let r = 3 + log_pos(p.area_um2, a_min, a_max, 0, 6);
            let fill = if p.pareto { "#4878b0" } else { "#c8c8cc" };
            let stroke = if p.roofline == "bandwidth-bound" { "#c04848" } else { "#888" };
            let _ = write!(
                svg,
                r##"<circle cx="{cx}" cy="{cy}" r="{r}" fill="{fill}" stroke="{stroke}"><title>{df} {geom} {mem} {kind} int{bits}: {cyc} cycles, {fj:.0} fJ, {um:.0} um2, {roof}{front}</title></circle>"##,
                df = p.dataflow.tag(),
                geom = esc(&p.geometry.tag()),
                mem = esc(&p.mem),
                kind = p.kind,
                bits = p.precision.bits(),
                cyc = p.total_cycles,
                fj = p.energy_fj,
                um = p.area_um2,
                roof = p.roofline,
                front = if p.pareto { ", PARETO" } else { "" },
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"{
      "engine": {"kind": "bsc", "quick": true, "workers": 2},
      "tenants": {"gold": {"latency_p99_cycles": 100000000, "min_goodput": 0.5}},
      "jobs": [
        {"name": "g", "network": "lenet5", "tenant": "gold", "count": 2},
        {"name": "f", "network": "lenet5", "precision": "int8"}
      ]
    }"#;

    #[test]
    fn dashboard_is_self_contained_with_one_svg_per_tenant() {
        let run = crate::serve::serve(MANIFEST).unwrap();
        let html = dashboard_html(&run);
        assert_eq!(
            html.matches("<svg").count(),
            run.batch.slo.tenants.len(),
            "exactly one svg per tenant"
        );
        // Self-contained: no external fetches of any kind.
        for forbidden in ["http://", "https://", "<script", "<link", "@import", "url("] {
            assert!(!html.contains(forbidden), "dashboard must not reference {forbidden}");
        }
        // Both tenants (default + gold) appear, and the verdict renders.
        assert!(html.contains(">gold</td>"));
        assert!(html.contains(">default</td>"));
        assert!(html.contains("class=\"met\"") || html.contains("class=\"missed\""));
        // Heatmap totals match the exact attribution.
        assert!(html.contains(&format!("<td>{}</td>", run.batch.slo.total_energy_fj())));
    }

    #[test]
    fn dashboard_is_deterministic_across_runs() {
        let a = dashboard_html(&crate::serve::serve(MANIFEST).unwrap());
        let b = dashboard_html(&crate::serve::serve(MANIFEST).unwrap());
        assert_eq!(a, b, "no wall-clock data may leak into the dashboard");
    }

    const ONLINE_MANIFEST: &str = r#"{
      "cluster": {
        "policy": "round-robin",
        "seed": 3,
        "horizon_cycles": 100000,
        "max_outstanding": 4,
        "shards": [
          {"name": "a0", "kind": "bsc", "quick": true},
          {"name": "b1", "kind": "lpc", "quick": true, "mem": "edge"}
        ]
      },
      "tenants": {"gold": {"latency_p99_cycles": 100000, "min_goodput": 0.1}},
      "sources": [
        {"name": "s", "network": "micro", "tenant": "gold",
         "arrivals": {"process": "poisson", "mean_interarrival_cycles": 800}}
      ]
    }"#;

    #[test]
    fn online_dashboard_shares_the_slo_body_and_names_the_cluster() {
        let run = crate::online::online(ONLINE_MANIFEST, Some(2)).unwrap();
        let html = online_dashboard_html(&run);
        assert_eq!(
            html.matches("<svg").count(),
            run.report.slo.tenants.len() + run.report.shards.len(),
            "one svg per tenant plus one depth panel per shard"
        );
        for forbidden in ["http://", "https://", "<script", "<link", "@import", "url("] {
            assert!(!html.contains(forbidden), "dashboard must not reference {forbidden}");
        }
        assert!(html.contains("round-robin dispatch over 2 shards (a0, b1)"), "{html}");
        assert!(html.contains("cluster total"));
        assert!(html.contains(">gold</td>"));
        let again =
            online_dashboard_html(&crate::online::online(ONLINE_MANIFEST, Some(8)).unwrap());
        assert_eq!(html, again, "online dashboard is worker-count independent");
    }

    #[test]
    fn online_dashboard_carries_the_cluster_observatory() {
        let run = crate::online::online(ONLINE_MANIFEST, Some(2)).unwrap();
        let html = online_dashboard_html(&run);
        assert!(html.contains("Per-shard tallies and high-water marks"), "{html}");
        assert!(html.contains("Admission ladder"), "{html}");
        assert!(html.contains("peak backlog (cyc)"));
        for s in &run.report.shards {
            assert!(html.contains(&format!("<td>{}</td>", esc(&s.name))));
        }
        // Every shard's funnel row balances: the offered count equals
        // the sum of its stage outcomes, and the table shows it.
        for f in &run.report.funnel {
            assert!(html.contains(&format!(
                "<td>{}</td><td>{}</td><td>{}</td><td>{}</td>",
                f.offered, f.queue_full, f.overloaded, f.deadline_infeasible
            )));
        }
    }

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(esc(r#"<a&"b>"#), "&lt;a&amp;&quot;b&gt;");
    }

    const DSE_MANIFEST: &str = r#"{
      "name": "svg-dse", "workload": "tiny", "steps": 16,
      "dataflows": ["weight-stationary", "output-stationary"],
      "geometries": [{"rows": 8, "vector_length": 4}, {"rows": 4, "vector_length": 4}],
      "mem": [
        {"name": "edge", "preset": "edge"},
        {"name": "edge-bw1", "preset": "edge", "bandwidth_bytes_per_cycle": 1}
      ],
      "kinds": ["bsc"], "precisions": ["int4", "int8"]
    }"#;

    #[test]
    fn dse_scatter_is_self_contained_with_one_circle_per_point() {
        let run = crate::dse::dse(DSE_MANIFEST, Some(2)).unwrap();
        let svg = dse_pareto_svg(&run);
        assert_eq!(svg.matches("<circle").count(), run.points.len());
        assert_eq!(svg.matches("PARETO").count(), run.pareto_count());
        // Self-contained: the only URI is the SVG namespace itself.
        for forbidden in ["https://", "<script", "<link", "@import", "url(", "<image"] {
            assert!(!svg.contains(forbidden), "scatter must not reference {forbidden}");
        }
        assert_eq!(svg.matches("http://").count(), 1, "xmlns only");
        assert!(svg.contains(r#"xmlns="http://www.w3.org/2000/svg""#));
        // Bandwidth-bound points are ringed red somewhere in the sweep.
        assert!(svg.contains("#c04848"), "{svg}");
    }

    #[test]
    fn dse_scatter_is_worker_count_independent() {
        let a = dse_pareto_svg(&crate::dse::dse(DSE_MANIFEST, Some(1)).unwrap());
        let b = dse_pareto_svg(&crate::dse::dse(DSE_MANIFEST, Some(8)).unwrap());
        assert_eq!(a, b, "no wall-clock data may leak into the scatter");
    }

    #[test]
    fn log_positions_stay_inside_the_axis_and_preserve_order() {
        let lo = log_pos(1.0, 1.0, 100.0, 40, 600);
        let mid = log_pos(10.0, 1.0, 100.0, 40, 600);
        let hi = log_pos(100.0, 1.0, 100.0, 40, 600);
        assert_eq!(lo, 40);
        assert_eq!(hi, 600);
        assert!(lo < mid && mid < hi);
        // Degenerate span centers the point instead of dividing by zero.
        assert_eq!(log_pos(5.0, 5.0, 5.0, 40, 600), 320);
    }
}
