//! `repro dse`: dataflow × geometry × memory × precision × MAC-kind
//! design-space exploration with 3-D Pareto-front extraction.
//!
//! A JSON manifest names the axes (see `docs/dse.md`); the driver
//! enumerates the full cross product, characterizes each distinct
//! `(MAC kind, vector length)` design once at the gate level, then
//! evaluates every point over the [`bsc_netlist::par`] pool — results
//! are merged in enumeration-index order, so every report is
//! byte-identical at any worker count.  Per point it runs the workload's
//! layers through [`schedule_conv_with_memory_dataflow`] (the
//! stall-accurate tiled DMA schedule of the chosen dataflow), prices the
//! schedule with the calibrated PPA + SRAM energy models, and records
//! the three objectives: total energy (fJ), total latency (cycles, also
//! reported in µs at the manifest clock), and array area (µm², rows ×
//! characterized unit area).  [`pareto_flags`] marks the minimizing
//! front; `scripts/ci.sh` regenerates `BENCH_dse_baseline.json` from
//! `examples/dse_manifest.json` and diffs it at `--tol 0`.

use std::sync::Arc;

use bsc_mac::ppa::{CharacterizeConfig, DesignCharacterization};
use bsc_mac::{MacKind, Precision};
use bsc_netlist::par;
use bsc_systolic::energy::{ArrayEnergyModel, SramModel};
use bsc_systolic::mapping::ConvShape;
use bsc_systolic::{
    schedule_conv_with_memory_dataflow, ArrayConfig, ArrayGeometry, DataflowKind, DramBandwidth,
    MemConfig,
};
use bsc_telemetry::{JsonBuilder, MetricsSnapshot, ProfileSnapshot, Profiler, Registry};

/// Geometry bounds the manifest accepts: characterization cost grows
/// with the vector length (gate count) and the schedule loops with the
/// row count, so runaway manifests fail fast instead of hanging CI.
const MAX_ROWS: u64 = 1024;
const MAX_VECTOR_LENGTH: u64 = 64;

/// One memory hierarchy under sweep: a preset plus optional bandwidth
/// override, kept by name for reports.
#[derive(Debug, Clone)]
pub struct MemSpec {
    /// Report label (defaults to the preset name).
    pub name: String,
    /// The hierarchy handed to the tiler.
    pub mem: MemConfig,
}

/// A parsed DSE manifest: the five sweep axes plus the shared workload
/// and operating point.
#[derive(Debug, Clone)]
pub struct DseManifest {
    /// Sweep label (reports and render).
    pub name: String,
    /// Workload tag (see [`workload_layers`]).
    pub workload: String,
    /// Operating clock period in ps (latency and PPA evaluation).
    pub period_ps: f64,
    /// Gate-level characterization stimulus cycles per mode.
    pub steps: usize,
    /// Dataflows swept.
    pub dataflows: Vec<DataflowKind>,
    /// Array geometries swept.
    pub geometries: Vec<ArrayGeometry>,
    /// Memory hierarchies swept.
    pub mems: Vec<MemSpec>,
    /// MAC architectures swept.
    pub kinds: Vec<MacKind>,
    /// Operand precisions swept.
    pub precisions: Vec<Precision>,
    /// Worker-count override (`repro dse --workers` wins over this).
    pub workers: Option<usize>,
}

/// One evaluated design point: the five coordinates plus the summed
/// schedule statistics and the three Pareto objectives.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Dataflow coordinate.
    pub dataflow: DataflowKind,
    /// Geometry coordinate.
    pub geometry: ArrayGeometry,
    /// Memory-hierarchy coordinate (the [`MemSpec`] name).
    pub mem: String,
    /// MAC-architecture coordinate.
    pub kind: MacKind,
    /// Precision coordinate.
    pub precision: Precision,
    /// Stall-free compute cycles summed over the workload.
    pub compute_cycles: u64,
    /// Stall-inclusive cycles summed over the workload (objective 2).
    pub total_cycles: u64,
    /// DMA stall + drain cycles summed over the workload.
    pub stall_cycles: u64,
    /// DRAM traffic in bytes summed over the workload.
    pub dma_bytes: u64,
    /// Total energy in fJ (datapath + SRAM + DMA; objective 1).
    pub energy_fj: f64,
    /// Array area in µm²: rows × characterized unit area (objective 3).
    pub area_um2: f64,
    /// `total_cycles` at the manifest clock, in µs.
    pub latency_us: f64,
    /// `"bandwidth-bound"` when the summed DMA busy time exceeds the
    /// summed compute time, else `"compute-bound"`.
    pub roofline: &'static str,
    /// Whether the point survives 3-D Pareto filtering.
    pub pareto: bool,
}

/// A finished sweep: every point (enumeration order), the profile of
/// the run's own phases, and the telemetry counters.
#[derive(Debug, Clone)]
pub struct DseRun {
    /// The manifest that produced the run.
    pub manifest: DseManifest,
    /// Workload layers (tag, shape) in evaluation order.
    pub layers: Vec<(&'static str, ConvShape)>,
    /// Every evaluated point, in enumeration order.
    pub points: Vec<DsePoint>,
    /// Phase table (enumerate / evaluate / pareto / export).
    pub profile: ProfileSnapshot,
    /// `dse.points.{evaluated,pareto}` counters.
    pub metrics: MetricsSnapshot,
    /// CSV rendered during the export phase (so its byte count is a
    /// deterministic export counter).
    csv: String,
}

impl DseRun {
    /// The Pareto-front points, in enumeration order.
    pub fn front(&self) -> impl Iterator<Item = &DsePoint> {
        self.points.iter().filter(|p| p.pareto)
    }

    /// Number of Pareto-front points.
    pub fn pareto_count(&self) -> usize {
        self.points.iter().filter(|p| p.pareto).count()
    }
}

fn err_at(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

fn u64_field(
    obj: &bsc_telemetry::JsonValue,
    ctx: &str,
    key: &str,
) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| err_at(ctx, format!("{key}: expected a non-negative integer")))?;
            Ok(Some(n as u64))
        }
    }
}

/// The named workload: a small fixed layer set every point shares.
///
/// * `"edge3"` — the `repro mem` Table-I-style set (early wide-spatial,
///   mid-network, late channel-heavy);
/// * `"tiny"` — a two-layer set for fast tests.
///
/// # Errors
///
/// Returns a message naming the known tags on an unknown workload.
pub fn workload_layers(name: &str) -> Result<Vec<(&'static str, ConvShape)>, String> {
    match name {
        "edge3" => Ok(crate::memexp::sweep_layers()),
        "tiny" => Ok(vec![
            ("tiny-16c-12x12", ConvShape::conv(16, 32, 12, 12, 3, 1, 1)),
            ("tiny-fc", ConvShape::fully_connected(128, 10)),
        ]),
        other => Err(format!("workload: unknown tag `{other}` (edge3|tiny)")),
    }
}

fn parse_mem(spec: &bsc_telemetry::JsonValue, i: usize) -> Result<MemSpec, String> {
    let ctx = format!("mem[{i}]");
    let preset = spec.get("preset").and_then(|v| v.as_str()).unwrap_or("edge");
    let mut mem = match preset {
        "infinite" => MemConfig::infinite(),
        "edge" => MemConfig::edge(),
        other => {
            return Err(err_at(&ctx, format!("preset: unknown preset `{other}` (infinite|edge)")))
        }
    };
    if let Some(bw) = u64_field(spec, &ctx, "bandwidth_bytes_per_cycle")? {
        if bw == 0 {
            return Err(err_at(&ctx, "bandwidth_bytes_per_cycle: must be positive"));
        }
        mem = mem.with_bandwidth(DramBandwidth::BytesPerCycle(bw));
    }
    let name = spec
        .get("name")
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{preset}{i}"));
    Ok(MemSpec { name, mem })
}

/// Parses a DSE manifest (see `docs/dse.md` for the schema).
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown tags, or
/// out-of-range parameters.
pub fn parse_dse_manifest(text: &str) -> Result<DseManifest, String> {
    let doc = bsc_telemetry::parse_json(text).map_err(|e| err_at("manifest", e))?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .unwrap_or_else(|| "dse".to_owned());
    let workload = doc
        .get("workload")
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .unwrap_or_else(|| "edge3".to_owned());
    workload_layers(&workload)?;
    let period_ps = u64_field(&doc, "manifest", "period_ps")?
        .filter(|p| *p >= 1)
        .unwrap_or(2000) as f64;
    let steps = u64_field(&doc, "manifest", "steps")?
        .filter(|s| *s >= 1)
        .unwrap_or(48) as usize;

    let dataflows = match doc.get("dataflows").and_then(|v| v.as_array()) {
        None => DataflowKind::ALL.to_vec(),
        Some([]) => return Err("dataflows: expected a non-empty array".into()),
        Some(a) => a
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let ctx = format!("dataflows[{i}]");
                let tag = v.as_str().ok_or_else(|| err_at(&ctx, "expected a string"))?;
                DataflowKind::parse(tag).ok_or_else(|| {
                    err_at(
                        &ctx,
                        format!(
                            "unknown dataflow `{tag}` (weight-stationary|output-stationary|input-stationary)"
                        ),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };

    let geometries = match doc.get("geometries").and_then(|v| v.as_array()) {
        None => vec![ArrayGeometry::paper()],
        Some([]) => return Err("geometries: expected a non-empty array".into()),
        Some(a) => a
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let ctx = format!("geometries[{i}]");
                let rows = u64_field(g, &ctx, "rows")?
                    .filter(|r| (1..=MAX_ROWS).contains(r))
                    .ok_or_else(|| err_at(&ctx, format!("rows: expected 1..={MAX_ROWS}")))?;
                let vl = u64_field(g, &ctx, "vector_length")?
                    .filter(|v| (2..=MAX_VECTOR_LENGTH).contains(v))
                    .ok_or_else(|| {
                        err_at(&ctx, format!("vector_length: expected 2..={MAX_VECTOR_LENGTH}"))
                    })?;
                Ok(ArrayGeometry::new(rows as usize, vl as usize))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };

    let mems = match doc.get("mem").and_then(|v| v.as_array()) {
        None => vec![MemSpec { name: "edge".into(), mem: MemConfig::edge() }],
        Some([]) => return Err("mem: expected a non-empty array".into()),
        Some(a) => a
            .iter()
            .enumerate()
            .map(|(i, spec)| parse_mem(spec, i))
            .collect::<Result<Vec<_>, _>>()?,
    };

    let kinds = match doc.get("kinds").and_then(|v| v.as_array()) {
        None => MacKind::ALL.to_vec(),
        Some([]) => return Err("kinds: expected a non-empty array".into()),
        Some(a) => a
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let ctx = format!("kinds[{i}]");
                match v.as_str().map(str::to_ascii_lowercase).as_deref() {
                    Some("bsc") => Ok(MacKind::Bsc),
                    Some("lpc") => Ok(MacKind::Lpc),
                    Some("hps") => Ok(MacKind::Hps),
                    Some(other) => {
                        Err(err_at(&ctx, format!("unknown architecture `{other}` (bsc|lpc|hps)")))
                    }
                    None => Err(err_at(&ctx, "expected a string")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };

    let precisions = match doc.get("precisions").and_then(|v| v.as_array()) {
        None => Precision::ALL.to_vec(),
        Some([]) => return Err("precisions: expected a non-empty array".into()),
        Some(a) => a
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let ctx = format!("precisions[{i}]");
                let s = v.as_str().ok_or_else(|| err_at(&ctx, "expected a string"))?;
                s.parse::<Precision>().map_err(|e| err_at(&ctx, e))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };

    let workers = u64_field(&doc, "manifest", "workers")?
        .map(|w| {
            if w == 0 {
                Err("manifest: workers: must be positive".to_string())
            } else {
                Ok(w as usize)
            }
        })
        .transpose()?;

    Ok(DseManifest {
        name,
        workload,
        period_ps,
        steps,
        dataflows,
        geometries,
        mems,
        kinds,
        precisions,
        workers,
    })
}

/// Pareto flags for a minimize-all objective matrix: `flags[i]` is true
/// iff no other row dominates row `i` (≤ in every objective, < in at
/// least one).  Duplicate rows are all on the front.
pub fn pareto_flags(objectives: &[[f64; 3]]) -> Vec<bool> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    objectives
        .iter()
        .map(|p| !objectives.iter().any(|q| dominates(q, p)))
        .collect()
}

/// One coordinate tuple in enumeration order.
#[derive(Debug, Clone, Copy)]
struct PointSpec {
    dataflow: DataflowKind,
    geometry: ArrayGeometry,
    mem: usize,
    kind: MacKind,
    precision: Precision,
}

fn evaluate_point(
    m: &DseManifest,
    layers: &[(&'static str, ConvShape)],
    charac: &DesignCharacterization,
    spec: PointSpec,
) -> Result<DsePoint, String> {
    let array = ArrayConfig::with_geometry(spec.kind, spec.geometry);
    let mem = &m.mems[spec.mem];
    let unit = charac
        .at_period_weight_stationary(spec.precision, m.period_ps)
        .map_err(|e| format!("{} L{}: {e}", spec.kind, spec.geometry.vector_length))?;
    let area_um2 = spec.geometry.rows as f64 * unit.area_um2;
    let model = ArrayEnergyModel::new(unit, array);
    let sram = SramModel::smic28_like();
    let (mut compute, mut total, mut stall, mut dma, mut dma_busy) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut energy_fj = 0.0;
    for (tag, shape) in layers {
        let aware =
            schedule_conv_with_memory_dataflow(&array, &mem.mem, spec.precision, shape, spec.dataflow)
                .map_err(|e| format!("layer {tag}: {e}"))?;
        compute += aware.compute.cycles;
        total += aware.total_cycles;
        stall += aware.stall_cycles + aware.drain_cycles;
        dma += aware.dma_bytes();
        dma_busy += aware.dma_busy_cycles;
        energy_fj += model.schedule_energy_with_dma(&aware, &sram).total_fj();
    }
    Ok(DsePoint {
        dataflow: spec.dataflow,
        geometry: spec.geometry,
        mem: mem.name.clone(),
        kind: spec.kind,
        precision: spec.precision,
        compute_cycles: compute,
        total_cycles: total,
        stall_cycles: stall,
        dma_bytes: dma,
        energy_fj,
        area_um2,
        latency_us: total as f64 * m.period_ps / 1e6,
        roofline: if dma_busy > compute { "bandwidth-bound" } else { "compute-bound" },
        pareto: false,
    })
}

/// Runs the full sweep described by `text`.  `workers` overrides the
/// manifest's worker count; every report is byte-identical at any
/// worker count (results merge in enumeration-index order).
///
/// # Errors
///
/// Returns a human-readable message on manifest, characterization or
/// scheduling failures.
pub fn dse(text: &str, workers: Option<usize>) -> Result<DseRun, String> {
    let m = parse_dse_manifest(text)?;
    let layers = workload_layers(&m.workload)?;
    let prof = Profiler::new();
    let registry = Registry::new();

    // --- enumerate: the cross product plus one gate-level
    // characterization per distinct (kind, vector length) design.
    let enumerate = prof.phase("enumerate");
    let (specs, characs) = {
        let _g = enumerate.enter();
        let mut specs = Vec::new();
        for &dataflow in &m.dataflows {
            for &geometry in &m.geometries {
                for mem in 0..m.mems.len() {
                    for &kind in &m.kinds {
                        for &precision in &m.precisions {
                            specs.push(PointSpec { dataflow, geometry, mem, kind, precision });
                        }
                    }
                }
            }
        }
        let mut characs: Vec<((MacKind, usize), Arc<DesignCharacterization>)> = Vec::new();
        for &kind in &m.kinds {
            for &g in &m.geometries {
                if characs.iter().any(|(k, _)| *k == (kind, g.vector_length)) {
                    continue;
                }
                let cfg = CharacterizeConfig {
                    length: g.vector_length,
                    steps: m.steps,
                    ..CharacterizeConfig::default()
                };
                let c = DesignCharacterization::new(kind, &cfg)
                    .map_err(|e| format!("characterizing {kind} L{}: {e}", g.vector_length))?;
                characs.push(((kind, g.vector_length), Arc::new(c)));
            }
        }
        (specs, characs)
    };
    enumerate.add("points", specs.len() as u64);
    enumerate.add("designs_characterized", characs.len() as u64);

    // --- evaluate: every point over the work-stealing pool, merged in
    // enumeration-index order.
    let evaluate = prof.phase("evaluate");
    let results = {
        let _g = evaluate.enter();
        par::run_indexed(specs.len(), workers.or(m.workers), |i| {
            let spec = specs[i];
            let charac = &characs
                .iter()
                .find(|(k, _)| *k == (spec.kind, spec.geometry.vector_length))
                .expect("every swept design characterized")
                .1;
            evaluate_point(&m, &layers, charac, spec)
        })
    };
    let mut points = results.into_iter().collect::<Result<Vec<_>, String>>()?;
    evaluate.add("points_evaluated", points.len() as u64);
    evaluate.add("layer_schedules", (points.len() * layers.len()) as u64);
    registry.counter("dse.points.evaluated").add(points.len() as u64);

    // --- pareto: minimize (energy, latency, area).
    let pareto = prof.phase("pareto");
    let front_points = {
        let _g = pareto.enter();
        let objectives: Vec<[f64; 3]> = points
            .iter()
            .map(|p| [p.energy_fj, p.total_cycles as f64, p.area_um2])
            .collect();
        let flags = pareto_flags(&objectives);
        for (p, f) in points.iter_mut().zip(&flags) {
            p.pareto = *f;
        }
        flags.iter().filter(|f| **f).count() as u64
    };
    pareto.add("front_points", front_points);
    pareto.add("dominated_points", points.len() as u64 - front_points);
    registry.counter("dse.points.pareto").add(front_points);

    // --- export: render the CSV now so its byte count is a
    // deterministic phase counter; JSON/SVG reuse the stored snapshot.
    let export = prof.phase("export");
    let csv = {
        let _g = export.enter();
        render_csv(&points)
    };
    export.add("csv_bytes", csv.len() as u64);
    export.add("rows", points.len() as u64);

    Ok(DseRun {
        manifest: m,
        layers,
        points,
        profile: prof.snapshot(),
        metrics: registry.snapshot(),
        csv,
    })
}

fn render_csv(points: &[DsePoint]) -> String {
    let mut out = String::from(
        "dataflow,rows,vector_length,mem,kind,precision_bits,compute_cycles,total_cycles,stall_cycles,dma_bytes,energy_fj,area_um2,latency_us,roofline,pareto\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.6},{},{}\n",
            p.dataflow.tag(),
            p.geometry.rows,
            p.geometry.vector_length,
            p.mem,
            p.kind,
            p.precision.bits(),
            p.compute_cycles,
            p.total_cycles,
            p.stall_cycles,
            p.dma_bytes,
            p.energy_fj,
            p.area_um2,
            p.latency_us,
            p.roofline,
            p.pareto,
        ));
    }
    out
}

/// CSV view of the sweep (one row per point, enumeration order).
pub fn to_csv(run: &DseRun) -> String {
    run.csv.clone()
}

/// Aligned-text view: the sweep summary, the Pareto front sorted by
/// energy, the phase table, and the telemetry counters.
pub fn render(run: &DseRun) -> String {
    use std::fmt::Write as _;
    let m = &run.manifest;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design-space exploration `{}`: {} points ({} dataflows x {} geometries x {} mem x {} kinds x {} precisions), workload `{}` ({} layers) @ {:.0} ps",
        m.name,
        run.points.len(),
        m.dataflows.len(),
        m.geometries.len(),
        m.mems.len(),
        m.kinds.len(),
        m.precisions.len(),
        m.workload,
        run.layers.len(),
        m.period_ps,
    );
    let bw = run.points.iter().filter(|p| p.roofline == "bandwidth-bound").count();
    let _ = writeln!(
        out,
        "roofline: {} bandwidth-bound / {} compute-bound",
        bw,
        run.points.len() - bw
    );

    let mut front: Vec<&DsePoint> = run.front().collect();
    front.sort_by(|a, b| a.energy_fj.total_cmp(&b.energy_fj));
    let _ = writeln!(out, "\nPareto front (energy, latency, area minimized): {} points", front.len());
    let _ = writeln!(
        out,
        "  {:<18} {:<8} {:<10} {:<5} {:>4}  {:>12} {:>12} {:>11} {:>10}  roofline",
        "dataflow", "geom", "mem", "kind", "prec", "cycles", "energy uJ", "latency us", "area mm2"
    );
    for p in front {
        let _ = writeln!(
            out,
            "  {:<18} {:<8} {:<10} {:<5} int{:<2}  {:>12} {:>12.3} {:>11.3} {:>10.4}  {}",
            p.dataflow.tag(),
            p.geometry.tag(),
            p.mem,
            p.kind.to_string(),
            p.precision.bits(),
            p.total_cycles,
            p.energy_fj / 1e9,
            p.latency_us,
            p.area_um2 / 1e6,
            p.roofline,
        );
    }

    let _ = writeln!(out, "\nsweep phases:");
    let _ = writeln!(out, "  {:<12} {:>6} {:>14}  wall", "phase", "calls", "work units");
    for p in &run.profile.phases {
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>14}  {}",
            p.name,
            p.calls,
            p.work_units(),
            crate::timing::fmt_ns(p.wall_ns as f64),
        );
    }
    let _ = writeln!(
        out,
        "metrics: dse.points.evaluated={} dse.points.pareto={}",
        run.metrics.counter("dse.points.evaluated"),
        run.metrics.counter("dse.points.pareto"),
    );
    out
}

/// Machine-readable sweep report for the CI baseline gate.  Every field
/// is a pure function of the manifest (cycle counts, exact fJ/µm²
/// doubles, profile work counters — no wall-clock anywhere), so the
/// document is byte-identical at any worker count: CI `cmp`s 1/2/8
/// workers and diffs the checked-in `BENCH_dse_baseline.json` at
/// `--tol 0`.
pub fn to_json(run: &DseRun) -> String {
    let m = &run.manifest;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("benchmark").string("dse");
    j.key("name").string(&m.name);
    j.key("workload").string(&m.workload);
    j.key("period_ps").f64(m.period_ps);
    j.key("dataflows").u64(m.dataflows.len() as u64);
    j.key("geometries").u64(m.geometries.len() as u64);
    j.key("mem_configs").u64(m.mems.len() as u64);
    j.key("kinds").u64(m.kinds.len() as u64);
    j.key("precisions").u64(m.precisions.len() as u64);
    j.key("points_evaluated").u64(run.points.len() as u64);
    j.key("pareto_points").u64(run.pareto_count() as u64);
    j.key("bandwidth_bound_points")
        .u64(run.points.iter().filter(|p| p.roofline == "bandwidth-bound").count() as u64);
    j.key("compute_bound_points")
        .u64(run.points.iter().filter(|p| p.roofline == "compute-bound").count() as u64);
    j.key("metrics").begin_object();
    j.key("dse.points.evaluated").u64(run.metrics.counter("dse.points.evaluated"));
    j.key("dse.points.pareto").u64(run.metrics.counter("dse.points.pareto"));
    j.end_object();
    j.key("points").begin_array();
    for p in &run.points {
        j.begin_object();
        j.key("dataflow").string(p.dataflow.tag());
        j.key("rows").u64(p.geometry.rows as u64);
        j.key("vector_length").u64(p.geometry.vector_length as u64);
        j.key("mem").string(&p.mem);
        j.key("kind").string(&p.kind.to_string());
        j.key("precision_bits").u64(u64::from(p.precision.bits()));
        j.key("compute_cycles").u64(p.compute_cycles);
        j.key("total_cycles").u64(p.total_cycles);
        j.key("stall_cycles").u64(p.stall_cycles);
        j.key("dma_bytes").u64(p.dma_bytes);
        j.key("energy_fj").f64(p.energy_fj);
        j.key("area_um2").f64(p.area_um2);
        j.key("latency_us").f64(p.latency_us);
        j.key("roofline").string(p.roofline);
        j.key("pareto").bool(p.pareto);
        j.end_object();
    }
    j.end_array();
    // Only the deterministic half of the profile goes into the report:
    // unlike `repro profile` (gated by the differ, which skips `_ns`
    // names), this document is byte-compared across worker counts in
    // CI, so wall-clock may not appear at all.
    j.key("counters").begin_object();
    for p in &run.profile.phases {
        j.key(&p.name).begin_object();
        j.key("calls").u64(p.calls);
        for (name, v) in &p.counters {
            j.key(name).u64(*v);
        }
        j.end_object();
    }
    j.end_object();
    j.end_object();
    let mut s = j.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sweep small enough to characterize in a unit test: one kind,
    /// one vector length, all three dataflows, a bandwidth-starved and
    /// a default edge hierarchy.
    const TINY_MANIFEST: &str = r#"{
      "name": "tiny-dse",
      "workload": "tiny",
      "steps": 16,
      "dataflows": ["weight-stationary", "output-stationary", "input-stationary"],
      "geometries": [
        {"rows": 8, "vector_length": 4},
        {"rows": 4, "vector_length": 4}
      ],
      "mem": [
        {"name": "edge", "preset": "edge"},
        {"name": "edge-bw1", "preset": "edge", "bandwidth_bytes_per_cycle": 1}
      ],
      "kinds": ["bsc"],
      "precisions": ["int4", "int8"]
    }"#;

    #[test]
    fn manifest_defaults_cover_every_axis() {
        let m = parse_dse_manifest(r#"{"name": "d"}"#).unwrap();
        assert_eq!(m.dataflows, DataflowKind::ALL.to_vec());
        assert_eq!(m.geometries, vec![ArrayGeometry::paper()]);
        assert_eq!(m.mems.len(), 1);
        assert_eq!(m.kinds, MacKind::ALL.to_vec());
        assert_eq!(m.precisions, Precision::ALL.to_vec());
        assert_eq!(m.period_ps, 2000.0);
        assert_eq!(m.workload, "edge3");
    }

    #[test]
    fn manifest_rejects_bad_axes() {
        for bad in [
            r#"{"dataflows": ["north-stationary"]}"#,
            r#"{"dataflows": []}"#,
            r#"{"geometries": [{"rows": 0, "vector_length": 4}]}"#,
            r#"{"geometries": [{"rows": 4, "vector_length": 1}]}"#,
            r#"{"geometries": [{"rows": 4, "vector_length": 1024}]}"#,
            r#"{"mem": [{"preset": "hbm"}]}"#,
            r#"{"mem": [{"preset": "edge", "bandwidth_bytes_per_cycle": 0}]}"#,
            r#"{"kinds": ["tpu"]}"#,
            r#"{"precisions": ["int13"]}"#,
            r#"{"workload": "mnist"}"#,
            r#"{"workers": 0}"#,
            r#"not json"#,
        ] {
            assert!(parse_dse_manifest(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn pareto_flags_satisfy_the_front_invariants() {
        // In-repo xorshift PRNG: deterministic random objective clouds.
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let dominates = |a: &[f64; 3], b: &[f64; 3]| {
            a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
        };
        for n in [1usize, 2, 17, 100] {
            let objs: Vec<[f64; 3]> =
                (0..n).map(|_| [rng(), rng(), rng()]).collect();
            let flags = pareto_flags(&objs);
            assert_eq!(flags.len(), n);
            assert!(flags.iter().any(|f| *f), "front is never empty");
            for (i, flag) in flags.iter().enumerate() {
                if *flag {
                    // No front member is dominated by anything.
                    assert!(!objs.iter().any(|q| dominates(q, &objs[i])), "front point {i}");
                } else {
                    // Every excluded point is dominated by some front member.
                    assert!(
                        objs.iter()
                            .zip(&flags)
                            .any(|(q, qf)| *qf && dominates(q, &objs[i])),
                        "excluded point {i} must be dominated by a front member"
                    );
                }
            }
        }
    }

    #[test]
    fn pareto_keeps_duplicates_and_single_points() {
        let objs = [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [2.0, 2.0, 2.0]];
        assert_eq!(pareto_flags(&objs), vec![true, true, false]);
        assert_eq!(pareto_flags(&[[5.0, 5.0, 5.0]]), vec![true]);
        assert!(pareto_flags(&[]).is_empty());
    }

    #[test]
    fn tiny_sweep_is_worker_count_independent_and_well_formed() {
        let runs: Vec<DseRun> =
            [1usize, 2, 8].iter().map(|w| dse(TINY_MANIFEST, Some(*w)).unwrap()).collect();
        let json = to_json(&runs[0]);
        for r in &runs[1..] {
            assert_eq!(json, to_json(r), "report must be byte-identical at any worker count");
        }
        let run = &runs[0];
        // 3 dataflows x 2 geometries x 2 mems x 1 kind x 2 precisions.
        assert_eq!(run.points.len(), 3 * 2 * 2 * 2);
        assert_eq!(run.metrics.counter("dse.points.evaluated"), run.points.len() as u64);
        assert_eq!(run.metrics.counter("dse.points.pareto"), run.pareto_count() as u64);
        // Non-trivial front; both roofline classes visible.
        assert!(run.pareto_count() > 1, "front: {}", run.pareto_count());
        assert!(run.pareto_count() < run.points.len());
        assert!(run.points.iter().any(|p| p.roofline == "bandwidth-bound"));
        assert!(run.points.iter().any(|p| p.roofline == "compute-bound"));
        // The profile carries all four deterministic phases.
        for phase in ["enumerate", "evaluate", "pareto", "export"] {
            let p = run.profile.phase(phase).unwrap_or_else(|| panic!("missing {phase}"));
            assert_eq!(p.calls, 1);
        }
        assert_eq!(
            run.profile.phase("evaluate").unwrap().counter("points_evaluated"),
            run.points.len() as u64
        );
        // The CSV was rendered during the export phase and counted.
        assert_eq!(
            run.profile.phase("export").unwrap().counter("csv_bytes"),
            to_csv(run).len() as u64
        );
        assert_eq!(to_csv(run).lines().count(), run.points.len() + 1);
    }

    #[test]
    fn tiny_sweep_report_is_strict_json_with_both_sections() {
        let run = dse(TINY_MANIFEST, Some(2)).unwrap();
        let doc = bsc_telemetry::parse_json(&to_json(&run)).expect("strict JSON");
        assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("dse"));
        let n = doc.get("points_evaluated").and_then(|v| v.as_f64()).unwrap();
        let k = doc.get("pareto_points").and_then(|v| v.as_f64()).unwrap();
        assert!(k > 1.0 && k < n);
        assert!(doc.get("counters").and_then(|c| c.get("evaluate")).is_some());
        // Wall-clock must NOT appear: the report is byte-compared
        // across worker counts in CI.
        assert!(doc.get("wall").is_none());
        assert!(!to_json(&run).contains("_ns"));
        let text = render(&run);
        assert!(text.contains("Pareto front"), "{text}");
        assert!(text.contains("dse.points.evaluated="), "{text}");
        assert!(text.contains("bandwidth-bound"), "{text}");
    }

    #[test]
    fn weight_stationary_at_paper_geometry_matches_the_mem_sweep() {
        // The DSE path prices WS@32×32 through the same scheduler as
        // `repro mem`: cross-check one point against a direct call.
        let manifest = r#"{
          "name": "ws-check", "workload": "edge3", "steps": 16,
          "dataflows": ["weight-stationary"],
          "geometries": [{"rows": 32, "vector_length": 4}],
          "mem": [{"name": "edge", "preset": "edge"}],
          "kinds": ["bsc"], "precisions": ["int8"]
        }"#;
        let run = dse(manifest, Some(2)).unwrap();
        assert_eq!(run.points.len(), 1);
        let p = &run.points[0];
        let array = ArrayConfig::with_geometry(MacKind::Bsc, ArrayGeometry::new(32, 4));
        let (mut compute, mut total) = (0u64, 0u64);
        for (_, shape) in &run.layers {
            let aware = schedule_conv_with_memory_dataflow(
                &array,
                &MemConfig::edge(),
                Precision::Int8,
                shape,
                DataflowKind::WeightStationary,
            )
            .unwrap();
            compute += aware.compute.cycles;
            total += aware.total_cycles;
        }
        assert_eq!(p.compute_cycles, compute);
        assert_eq!(p.total_cycles, total);
        assert!(p.energy_fj > 0.0 && p.area_um2 > 0.0);
    }
}
