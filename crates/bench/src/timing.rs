//! Minimal self-timed micro-benchmark harness (the offline replacement
//! for criterion).
//!
//! Every `benches/*.rs` target is a plain `harness = false` binary that
//! drives this module: a [`Group`] runs each measured body a warmup pass
//! plus `samples` timed passes, records every sample into a
//! [`bsc_telemetry::Histogram`], and prints one aligned summary line per
//! benchmark (mean / min / max wall-clock time).  No statistics beyond
//! that — the goal is a stable smoke-level timing signal that builds with
//! zero external dependencies, not criterion's rigor.

use std::hint::black_box;
use std::time::Instant;

use bsc_telemetry::Registry;

/// Default timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;

/// Nanosecond bucket bounds used for the per-benchmark histograms
/// (1 µs … 10 s in decades).
const SAMPLE_BOUNDS_NS: &[u64] = bsc_telemetry::metrics::DEFAULT_TIME_BOUNDS_NS;

/// A named collection of related benchmarks, printed under a common
/// prefix.
pub struct Group {
    name: String,
    samples: usize,
    registry: Registry,
}

impl Group {
    /// A group printing benchmarks as `name/<id>`.
    pub fn new(name: &str) -> Self {
        Group { name: name.to_string(), samples: DEFAULT_SAMPLES, registry: Registry::new() }
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs and reports one benchmark.  The closure's return value is
    /// passed through [`black_box`] so the optimizer cannot delete the
    /// measured work.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> Summary {
        let full = format!("{}/{id}", self.name);
        let hist = self.registry.histogram(&full, SAMPLE_BOUNDS_NS);
        black_box(f()); // warmup (and fail fast on panics)
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let snap = self.registry.snapshot();
        let h = snap.histogram(&full).expect("histogram just recorded");
        let summary = Summary {
            name: full,
            samples: h.count,
            mean_ns: h.mean(),
            min_ns: h.min,
            max_ns: h.max,
        };
        println!("{summary}");
        summary
    }

    /// The registry holding one histogram of raw samples per benchmark.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Aggregated timing of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// `group/benchmark` identifier.
    pub name: String,
    /// Timed samples taken.
    pub samples: u64,
    /// Mean wall-clock nanoseconds per sample.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} mean {:>12}   min {:>12}   max {:>12}   ({} samples)",
            self.name,
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns as f64),
            fmt_ns(self.max_ns as f64),
            self.samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut calls = 0u32;
        let mut g = Group::new("t");
        g.sample_size(3);
        let s = g.bench("count", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4); // 1 warmup + 3 samples
        assert_eq!(s.samples, 3);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.mean_ns >= s.min_ns as f64 && s.mean_ns <= s.max_ns as f64);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.500 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }
}
