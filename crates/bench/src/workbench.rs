//! Characterization workbench shared by every experiment.

use std::collections::BTreeMap;

use bsc_mac::ppa::{CharacterizeConfig, DesignCharacterization, PpaError};
use bsc_mac::MacKind;

/// All three designs characterized once, ready for the figure drivers.
#[derive(Debug)]
pub struct Workbench {
    designs: BTreeMap<MacKind, DesignCharacterization>,
    config: CharacterizeConfig,
}

impl Workbench {
    /// Characterizes BSC, LPC and HPS at the paper's vector length (32).
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn paper() -> Result<Self, PpaError> {
        Self::with_config(CharacterizeConfig::default())
    }

    /// A reduced workbench (vector length 8, short activity runs) for
    /// quick smoke runs; ratios are noisier but the orderings hold.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn quick() -> Result<Self, PpaError> {
        Self::with_config(CharacterizeConfig::quick(8))
    }

    /// Characterizes all designs with an explicit configuration, running
    /// the three gate-level characterizations on parallel threads.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn with_config(config: CharacterizeConfig) -> Result<Self, PpaError> {
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = MacKind::ALL
                .into_iter()
                .map(|kind| {
                    let cfg = &config;
                    scope.spawn(move || (kind, DesignCharacterization::new(kind, cfg)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("characterization thread panicked"))
                .collect::<Vec<_>>()
        });
        let mut designs = BTreeMap::new();
        for (kind, result) in results {
            designs.insert(kind, result?);
        }
        Ok(Workbench { designs, config })
    }

    /// The characterization of one design.
    pub fn design(&self, kind: MacKind) -> &DesignCharacterization {
        &self.designs[&kind]
    }

    /// The characterization configuration in use.
    pub fn config(&self) -> &CharacterizeConfig {
        &self.config
    }

    /// Vector length of the characterized designs.
    pub fn vector_length(&self) -> usize {
        self.config.length
    }
}
