//! Characterization workbench shared by every experiment.

use std::collections::BTreeMap;
use std::sync::Arc;

use bsc_accel::{Engine, EngineConfig};
use bsc_mac::ppa::{CharacterizeConfig, DesignCharacterization, PpaError};
use bsc_mac::MacKind;
use bsc_telemetry::Telemetry;

/// All three designs characterized once, ready for the figure drivers.
/// Designs are held behind [`Arc`] so batch engines and per-worker
/// accelerators can share them without re-characterizing.
#[derive(Debug)]
pub struct Workbench {
    designs: BTreeMap<MacKind, Arc<DesignCharacterization>>,
    config: CharacterizeConfig,
    telemetry: Telemetry,
}

impl Workbench {
    /// Characterizes BSC, LPC and HPS at the paper's vector length (32).
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn paper() -> Result<Self, PpaError> {
        Self::with_config(CharacterizeConfig::default())
    }

    /// A reduced workbench (vector length 8, short activity runs) for
    /// quick smoke runs; ratios are noisier but the orderings hold.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn quick() -> Result<Self, PpaError> {
        Self::with_config(CharacterizeConfig::quick(8))
    }

    /// Characterizes all designs with an explicit configuration.  The
    /// designs run one after another; parallelism comes from each
    /// characterization sharding its stimulus batches across the worker
    /// pool, which keeps the cores busy without oversubscribing them.
    ///
    /// # Errors
    ///
    /// Propagates gate-level simulation failures.
    pub fn with_config(config: CharacterizeConfig) -> Result<Self, PpaError> {
        let telemetry = Telemetry::metrics_only();
        let results = {
            let _wall = telemetry.metrics.timer("bench.characterize_ns");
            let root = telemetry.spans.begin("bench.characterize");
            root.annotate("length", config.length);
            MacKind::ALL
                .into_iter()
                .map(|kind| {
                    let _t = telemetry.metrics.timer(&format!("bench.characterize.{kind}_ns"));
                    let _s = telemetry.spans.begin(&format!("characterize.{kind}"));
                    (kind, DesignCharacterization::new(kind, &config))
                })
                .collect::<Vec<_>>()
        };
        let mut designs = BTreeMap::new();
        for (kind, result) in results {
            designs.insert(kind, Arc::new(result?));
        }
        Ok(Workbench { designs, config, telemetry })
    }

    /// Wall-clock nanoseconds the gate-level characterization took (all
    /// three designs) — the quantity the compiled-tape /
    /// incremental-eval rewrite is measured by.
    pub fn characterize_wall_ns(&self) -> u64 {
        self.telemetry
            .metrics
            .histogram("bench.characterize_ns", bsc_telemetry::metrics::DEFAULT_TIME_BOUNDS_NS)
            .sum()
    }

    /// The workbench's own telemetry bundle (characterization timers and
    /// per-design spans).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The characterization of one design.
    pub fn design(&self, kind: MacKind) -> &DesignCharacterization {
        &self.designs[&kind]
    }

    /// A shared handle to one design's characterization, for engines and
    /// accelerators that outlive this borrow.
    pub fn design_shared(&self, kind: MacKind) -> Arc<DesignCharacterization> {
        Arc::clone(&self.designs[&kind])
    }

    /// A batch inference engine on one of the workbench's designs —
    /// zero additional characterization, so BENCH runs can report
    /// batched throughput on the exact designs the figures used.  The
    /// engine's array matches the workbench scale: the paper's 32-PE
    /// array at vector length 32, the quick 4-PE array otherwise.
    pub fn engine(&self, kind: MacKind) -> Engine {
        let mut config = if self.config.length == 32 {
            EngineConfig::paper(kind)
        } else {
            EngineConfig::quick(kind)
        };
        config.accel.array.vector_length = self.config.length;
        config.accel.characterize = self.config.clone();
        Engine::with_design(config, self.design_shared(kind))
    }

    /// The characterization configuration in use.
    pub fn config(&self) -> &CharacterizeConfig {
        &self.config
    }

    /// Vector length of the characterized designs.
    pub fn vector_length(&self) -> usize {
        self.config.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_accel::InferenceJob;
    use bsc_nn::models;

    #[test]
    fn workbench_engine_shares_the_characterized_design() {
        let wb = Workbench::with_config(CharacterizeConfig::quick(2)).unwrap();
        let mut engine = wb.engine(MacKind::Bsc);
        assert!(Arc::ptr_eq(engine.characterization(), &wb.design_shared(MacKind::Bsc)));
        assert_eq!(engine.config().accel.array.vector_length, wb.vector_length());
        // Batched throughput on the exact design the figures used.
        let net = models::lenet5().into_shared();
        let jobs = (0..3)
            .map(|i| InferenceJob::new(format!("j{i}"), bsc_nn::SharedNetwork::clone(&net)))
            .collect();
        let batch = engine.run_jobs(jobs).unwrap();
        assert_eq!(batch.completed_count(), 3);
        assert!(batch.macs_per_cycle() > 0.0);
    }
}
