//! `repro profile`: run an online manifest under the simulator
//! self-profiler and report where the time and the work went.
//!
//! The profiler has two sides with two contracts:
//!
//! * **Deterministic work counters** (events popped, heap operations,
//!   admission decisions, SLO observations, bytes exported, ...) are a
//!   pure function of the manifest — byte-identical at any worker
//!   count.  They live under the `"counters"` section of the profile
//!   document and are gated by CI at `--tol 0` against
//!   `BENCH_profile_baseline.json`.
//! * **Wall-clock** (per-phase nanoseconds, arrivals/sec) varies run to
//!   run.  It lives under `"wall"` / `"throughput"` with `*_ns` /
//!   `*_per_sec` names, which `repro diff` reports but never gates.
//!
//! Besides the JSON document the driver can emit the profile as folded
//! stacks (`root;phase weight` lines), the input format of
//! `flamegraph.pl` and speedscope (see `docs/profiling.md`).

use std::time::Instant;

use bsc_telemetry::profile::{folded_stacks, write_profile_sections, ProfileSnapshot, Profiler};
use bsc_telemetry::JsonBuilder;

use crate::online::{
    events_jsonl, online_profiled, perfetto_json, report_json, slo_json, OnlineRun,
};

/// Root frame name used in the folded-stack export.
pub const FOLDED_ROOT: &str = "repro_online";

/// Arrivals per wall-clock second the profiler measured on the CI
/// manifest **before** the hot path was batched (per-event registry
/// increments, one heap push per completion, one RNG draw dispatch per
/// arrival) — the PR-8 datapoint recorded in `docs/profiling.md`.
/// Wall-clock is never gated at `--tol 0`, but `scripts/ci.sh` checks
/// the 1e7-arrival run against this figure so a hot-path regression
/// that survives the byte-identity gates still fails loudly.
pub const PRE_BATCHING_ARRIVALS_PER_SEC: f64 = 696_474.47;

/// One self-profiled online run: the run itself, the phase-attributed
/// profile, and the end-to-end wall clock.
#[derive(Debug)]
pub struct ProfileRun {
    /// The underlying online run (report, shard names, metrics).
    pub run: OnlineRun,
    /// Phase-attributed profile: wall clock + deterministic counters.
    pub snapshot: ProfileSnapshot,
    /// End-to-end wall clock of the simulation + export, in ns.  This
    /// wraps the whole run, so it is an upper bound on the sum of the
    /// per-phase wall times (which only cover instrumented scopes).
    pub run_wall_ns: u64,
}

impl ProfileRun {
    /// Simulated arrivals per wall-clock second (informational only —
    /// never gated).
    pub fn arrivals_per_sec(&self) -> f64 {
        if self.run_wall_ns == 0 {
            return 0.0;
        }
        self.run.report.submitted as f64 * 1e9 / self.run_wall_ns as f64
    }
}

/// Runs an online manifest with the self-profiler attached, then
/// serializes every export once under the `export` phase so the
/// serialization cost (and byte volume) is attributed too.  The export
/// documents themselves are discarded — `repro profile` measures, it
/// does not write run artifacts.
///
/// # Errors
///
/// Same contract as [`crate::online::online`].
pub fn profile(manifest_text: &str, workers_override: Option<usize>) -> Result<ProfileRun, String> {
    let prof = Profiler::new();
    let started = Instant::now();
    let run = online_profiled(manifest_text, workers_override, Some(&prof))?;
    {
        let _guard = prof.enter("export");
        let export = prof.phase("export");
        let mut bytes = 0u64;
        for doc in
            [report_json(&run), slo_json(&run), events_jsonl(&run), perfetto_json(&run)]
        {
            bytes += doc.len() as u64;
        }
        export.add("bytes_written", bytes);
        export.add("documents", 4);
    }
    let run_wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    Ok(ProfileRun { run, snapshot: prof.snapshot(), run_wall_ns })
}

/// Aligned-text phase table: calls, deterministic work units, wall
/// clock and wall share per phase, then the throughput line.
pub fn render(p: &ProfileRun) -> String {
    let mut out = String::new();
    let r = &p.run.report;
    out.push_str("self-profile: phase breakdown\n");
    out.push_str(&format!(
        "  {:<18} {:>12} {:>14} {:>12} {:>7}\n",
        "phase", "calls", "work units", "wall", "share"
    ));
    let total_wall = p.snapshot.total_wall_ns().max(1);
    for phase in &p.snapshot.phases {
        out.push_str(&format!(
            "  {:<18} {:>12} {:>14} {:>12} {:>6.1}%\n",
            phase.name,
            phase.calls,
            phase.work_units(),
            crate::timing::fmt_ns(phase.wall_ns as f64),
            phase.wall_ns as f64 * 100.0 / total_wall as f64,
        ));
    }
    out.push_str(&format!(
        "  arrivals {} (completed {}, rejected {}, shed {})\n",
        r.submitted, r.completed, r.rejected, r.shed
    ));
    out.push_str(&format!(
        "  wall {} -> {:.0} arrivals/sec (informational; never gated)\n",
        crate::timing::fmt_ns(p.run_wall_ns as f64),
        p.arrivals_per_sec(),
    ));
    out.push_str(&format!(
        "  pre-batching reference {:.0}/s -> {:.2}x\n",
        PRE_BATCHING_ARRIVALS_PER_SEC,
        p.arrivals_per_sec() / PRE_BATCHING_ARRIVALS_PER_SEC,
    ));
    out
}

/// The strict-JSON profile document.
///
/// Layout: a `meta` header identifying the run (deterministic manifest
/// outcomes only — no worker count, so the document is identical at 1,
/// 2 or 8 workers), the gated `counters` section, the ignored `wall`
/// section, and an ignored `throughput` object.  CI byte-compares
/// `counters` across worker counts and diffs the whole document against
/// `BENCH_profile_baseline.json` at `--tol 0` (wall names match the
/// default ignore patterns).
pub fn profile_document(p: &ProfileRun) -> String {
    let r = &p.run.report;
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("schema");
    j.string("bsc.profile.v1");
    j.key("meta");
    j.begin_object();
    j.key("seed");
    j.u64(r.seed);
    j.key("horizon_cycles");
    j.u64(r.horizon_cycles);
    j.key("shards");
    j.u64(r.shards.len() as u64);
    j.key("submitted");
    j.u64(r.submitted);
    j.key("completed");
    j.u64(r.completed);
    j.key("rejected");
    j.u64(r.rejected);
    j.key("shed");
    j.u64(r.shed);
    j.key("events_truncated");
    j.u64(r.events_truncated);
    j.end_object();
    write_profile_sections(&mut j, &p.snapshot);
    j.key("throughput");
    j.begin_object();
    j.key("run_wall_ns");
    j.u64(p.run_wall_ns);
    j.key("arrivals_per_sec");
    j.f64(p.arrivals_per_sec());
    j.end_object();
    j.end_object();
    j.finish()
}

/// Folded-stack view of the profile (`repro_online;<phase> weight`
/// lines, weight in µs) — pipe into `flamegraph.pl` or load in
/// speedscope.
pub fn folded(p: &ProfileRun) -> String {
    folded_stacks(&p.snapshot, FOLDED_ROOT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::tests::MANIFEST;

    #[test]
    fn profile_runs_and_attributes_every_phase() {
        let p = profile(MANIFEST, Some(2)).unwrap();
        for name in
            ["arrival-sampling", "dispatch", "admission", "schedule-eval", "slo-fold", "export"]
        {
            let phase = p.snapshot.phase(name).unwrap_or_else(|| panic!("missing phase {name}"));
            assert!(phase.calls > 0, "phase {name} never entered");
        }
        assert!(p.snapshot.phase("export").unwrap().counter("bytes_written") > 0);
        let text = render(&p);
        assert!(text.contains("arrivals/sec"), "{text}");
        assert!(text.contains("admission"), "{text}");
    }

    #[test]
    fn profile_document_counters_are_worker_count_independent() {
        let counters_of = |workers: usize| {
            let p = profile(MANIFEST, Some(workers)).unwrap();
            let doc = bsc_telemetry::parse_json(&profile_document(&p)).unwrap();
            // Re-serialize just the gated section; wall/throughput differ
            // run to run by construction.
            let mut j = JsonBuilder::new();
            j.begin_object();
            write_profile_sections(&mut j, &p.snapshot);
            j.end_object();
            assert!(doc.get("counters").is_some());
            assert!(doc.get("wall").is_some());
            let full = j.finish();
            let start = full.find("\"counters\"").unwrap();
            let end = full.find("\"wall\"").unwrap();
            full[start..end].to_owned()
        };
        let once = counters_of(1);
        assert_eq!(once, counters_of(2));
        assert_eq!(once, counters_of(8));
    }

    /// `metric_increments` used to be *defined* as
    /// `submitted + 2*(rejected+shed) + 3*completed` — a formula
    /// restating what the per-event path did (1 op per offer, reject +
    /// labeled point, completion + labeled point + histogram record).
    /// Since PR-9 it is *derived* from the `LocalMetrics` flush (every
    /// `inc`/`add`/`record` the batch actually buffered).  This pins the
    /// two definitions to each other: if batching ever skips or doubles
    /// an increment, the derived count drifts from the formula.
    #[test]
    fn metric_increments_flush_derivation_matches_the_legacy_formula() {
        let p = profile(MANIFEST, Some(2)).unwrap();
        let r = &p.run.report;
        let admission = p.snapshot.phase("admission").unwrap();
        assert!(r.rejected > 0 && r.completed > 0, "formula terms must be live");
        assert_eq!(
            admission.counter("metric_increments"),
            r.submitted + 2 * (r.rejected + r.shed) + 3 * r.completed,
            "flush-derived increment count drifted from the per-event formula"
        );
    }

    #[test]
    fn folded_stacks_cover_the_phases() {
        let p = profile(MANIFEST, Some(1)).unwrap();
        let text = folded(&p);
        for line in text.lines() {
            assert!(line.starts_with("repro_online;"), "{line}");
            let (_, weight) = line.rsplit_once(' ').unwrap();
            let _: u64 = weight.parse().unwrap();
        }
        assert!(text.lines().count() >= 5, "{text}");
    }

    #[test]
    fn profile_document_is_strict_json() {
        let p = profile(MANIFEST, Some(1)).unwrap();
        let doc = bsc_telemetry::parse_json(&profile_document(&p)).unwrap();
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("bsc.profile.v1"));
        let meta = doc.get("meta").unwrap();
        assert_eq!(
            meta.get("submitted").and_then(|v| v.as_f64()).unwrap() as u64,
            p.run.report.submitted
        );
        assert!(meta.get("workers").is_none(), "worker count must not enter the document");
        assert!(
            doc.get("throughput").and_then(|t| t.get("arrivals_per_sec")).is_some()
        );
    }
}
