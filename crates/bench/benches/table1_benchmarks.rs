//! Bench regenerating Table I: building the benchmark models and their
//! precision distributions.

use criterion::{criterion_group, criterion_main, Criterion};

use bsc_mac::Precision;
use bsc_nn::{models, report};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/build_models", |b| {
        b.iter(|| {
            let nets = models::table1_benchmarks();
            assert_eq!(nets.len(), 4);
            nets
        })
    });
    c.bench_function("table1/precision_distributions", |b| {
        let nets = models::table1_benchmarks();
        b.iter(|| {
            nets.iter()
                .map(|n| n.precision_distribution().fraction(Precision::Int4))
                .sum::<f64>()
        })
    });
    c.bench_function("table1/render", |b| b.iter(report::render_table1));
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
