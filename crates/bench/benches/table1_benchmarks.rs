//! Bench regenerating Table I: building the benchmark models and their
//! precision distributions.

use bsc_bench::timing::Group;
use bsc_mac::Precision;
use bsc_nn::{models, report};

fn main() {
    let mut group = Group::new("table1");
    group.sample_size(10);
    group.bench("build_models", || {
        let nets = models::table1_benchmarks();
        assert_eq!(nets.len(), 4);
        nets
    });
    let nets = models::table1_benchmarks();
    group.bench("precision_distributions", || {
        nets.iter()
            .map(|n| n.precision_distribution().fraction(Precision::Int4))
            .sum::<f64>()
    });
    group.bench("render", report::render_table1);
}
