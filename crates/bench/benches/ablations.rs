//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Same-shift accumulation (Fig. 4)** — the BSC netlist with shared
//!    per-vector shifters versus the per-element variant; the measured body
//!    is gate-level characterization, and the bench also asserts the shared
//!    topology wins on mux count.
//! 2. **Weight-stationary reuse (Fig. 5)** — activity characterization with
//!    weights held versus both streams random (what a non-systolic array
//!    without reuse would see).
//! 3. **2-bit gating in the bit-split unit** — switching energy in 2-bit
//!    mode versus 4-bit mode on the same hardware.

use criterion::{criterion_group, criterion_main, Criterion};

use bsc_mac::bsc::BscVector;
use bsc_mac::Precision;

fn bench_same_shift_ablation(c: &mut Criterion) {
    let v = BscVector::new(8);
    let shared = v.build_netlist();
    let per_element = v.build_netlist_per_element();
    // Structural sanity: Fig. 4's sharing must reduce mux cells.
    let mux = |m: &bsc_mac::MacNetlist| m.netlist().stats().count(bsc_netlist::GateKind::Mux);
    assert!(mux(&per_element) > mux(&shared));

    let mut group = c.benchmark_group("ablation_same_shift");
    group.sample_size(10);
    group.bench_function("same_shift", |b| {
        b.iter(|| shared.characterize(Precision::Int4, 4, 3).unwrap())
    });
    group.bench_function("per_element", |b| {
        b.iter(|| per_element.characterize(Precision::Int4, 4, 3).unwrap())
    });
    group.finish();
}

fn bench_weight_stationary_ablation(c: &mut Criterion) {
    let v = BscVector::new(8);
    let mac = v.build_netlist();
    let mut group = c.benchmark_group("ablation_weight_stationary");
    group.sample_size(10);
    group.bench_function("weights_held", |b| {
        b.iter(|| mac.characterize_weight_stationary(Precision::Int4, 4, 3).unwrap())
    });
    group.bench_function("weights_streaming", |b| {
        b.iter(|| mac.characterize(Precision::Int4, 4, 3).unwrap())
    });
    group.finish();
}

fn bench_gating_ablation(c: &mut Criterion) {
    let v = BscVector::new(8);
    let mac = v.build_netlist();
    let mut group = c.benchmark_group("ablation_2bit_gating");
    group.sample_size(10);
    group.bench_function("mode_2bit_gated", |b| {
        b.iter(|| mac.characterize(Precision::Int2, 4, 3).unwrap())
    });
    group.bench_function("mode_4bit_full", |b| {
        b.iter(|| mac.characterize(Precision::Int4, 4, 3).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_same_shift_ablation,
    bench_weight_stationary_ablation,
    bench_gating_ablation
);
criterion_main!(benches);
