//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Same-shift accumulation (Fig. 4)** — the BSC netlist with shared
//!    per-vector shifters versus the per-element variant; the measured body
//!    is gate-level characterization, and the bench also asserts the shared
//!    topology wins on mux count.
//! 2. **Weight-stationary reuse (Fig. 5)** — activity characterization with
//!    weights held versus both streams random (what a non-systolic array
//!    without reuse would see).
//! 3. **2-bit gating in the bit-split unit** — switching energy in 2-bit
//!    mode versus 4-bit mode on the same hardware.

use bsc_bench::timing::Group;
use bsc_mac::bsc::BscVector;
use bsc_mac::Precision;

fn bench_same_shift_ablation() {
    let v = BscVector::new(8);
    let shared = v.build_netlist();
    let per_element = v.build_netlist_per_element();
    // Structural sanity: Fig. 4's sharing must reduce mux cells.
    let mux = |m: &bsc_mac::MacNetlist| m.netlist().stats().count(bsc_netlist::GateKind::Mux);
    assert!(mux(&per_element) > mux(&shared));

    let mut group = Group::new("ablation_same_shift");
    group.sample_size(5);
    group.bench("same_shift", || shared.characterize(Precision::Int4, 4, 3).unwrap());
    group.bench("per_element", || per_element.characterize(Precision::Int4, 4, 3).unwrap());
}

fn bench_weight_stationary_ablation() {
    let v = BscVector::new(8);
    let mac = v.build_netlist();
    let mut group = Group::new("ablation_weight_stationary");
    group.sample_size(5);
    group.bench("weights_held", || {
        mac.characterize_weight_stationary(Precision::Int4, 4, 3).unwrap()
    });
    group.bench("weights_streaming", || mac.characterize(Precision::Int4, 4, 3).unwrap());
}

fn bench_gating_ablation() {
    let v = BscVector::new(8);
    let mac = v.build_netlist();
    let mut group = Group::new("ablation_2bit_gating");
    group.sample_size(5);
    group.bench("mode_2bit_gated", || mac.characterize(Precision::Int2, 4, 3).unwrap());
    group.bench("mode_4bit_full", || mac.characterize(Precision::Int4, 4, 3).unwrap());
}

fn main() {
    bench_same_shift_ablation();
    bench_weight_stationary_ablation();
    bench_gating_ablation();
}
