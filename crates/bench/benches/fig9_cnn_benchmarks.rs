//! Bench regenerating Fig. 9: average energy efficiency of the
//! multi-precision CNN benchmarks on all three arrays, including the full
//! Fig. 6 layer mapping.

use criterion::{criterion_group, criterion_main, Criterion};

use bsc_bench::{experiments, Workbench};

fn bench_fig9(c: &mut Criterion) {
    let wb = Workbench::quick().expect("characterization");
    c.bench_function("fig9/all_benchmarks_all_designs", |b| {
        b.iter(|| {
            let rows = experiments::fig9(&wb).expect("fig9");
            assert_eq!(rows.len(), 12);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
