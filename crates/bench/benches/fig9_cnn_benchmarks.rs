//! Bench regenerating Fig. 9: average energy efficiency of the
//! multi-precision CNN benchmarks on all three arrays, including the full
//! Fig. 6 layer mapping.

use bsc_bench::timing::Group;
use bsc_bench::{experiments, Workbench};

fn main() {
    let wb = Workbench::quick().expect("characterization");
    let mut group = Group::new("fig9");
    group.sample_size(5);
    group.bench("all_benchmarks_all_designs", || {
        let rows = experiments::fig9(&wb).expect("fig9");
        assert_eq!(rows.len(), 12);
        rows
    });
}
