//! Bench regenerating Fig. 7 (a and b): the clock-period sweep over every
//! design × precision mode.
//!
//! Characterization (the expensive gate-level part) happens once in setup;
//! the measured body is the PPA evaluation across the sweep, which is what
//! the harness re-runs per figure.

use criterion::{criterion_group, criterion_main, Criterion};

use bsc_bench::{experiments, Workbench};

fn bench_fig7(c: &mut Criterion) {
    let wb = Workbench::quick().expect("characterization");
    c.bench_function("fig7/sweep_eval", |b| {
        b.iter(|| {
            let pts = experiments::fig7_sweep(&wb);
            assert!(!pts.is_empty());
            pts
        })
    });
    c.bench_function("fig7/render", |b| {
        let pts = experiments::fig7_sweep(&wb);
        b.iter(|| {
            (
                experiments::render_fig7a(&pts),
                experiments::render_fig7b(&pts),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig7
}
criterion_main!(benches);
