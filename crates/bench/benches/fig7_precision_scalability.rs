//! Bench regenerating Fig. 7 (a and b): the clock-period sweep over every
//! design × precision mode.
//!
//! Characterization (the expensive gate-level part) happens once in setup;
//! the measured body is the PPA evaluation across the sweep, which is what
//! the harness re-runs per figure.

use bsc_bench::timing::Group;
use bsc_bench::{experiments, Workbench};

fn main() {
    let wb = Workbench::quick().expect("characterization");
    let mut group = Group::new("fig7");
    group.sample_size(10);
    group.bench("sweep_eval", || {
        let pts = experiments::fig7_sweep(&wb);
        assert!(!pts.is_empty());
        pts
    });
    let pts = experiments::fig7_sweep(&wb);
    group.bench("render", || {
        (experiments::render_fig7a(&pts), experiments::render_fig7b(&pts))
    });
}
