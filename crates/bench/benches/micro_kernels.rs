//! Micro-benchmarks of the core kernels: functional vector-MAC dot
//! products, gate-level simulation throughput, and the cycle-accurate
//! systolic matmul.  Self-timed via [`bsc_bench::timing`].

use bsc_bench::timing::Group;
use bsc_mac::{vector_mac, MacKind, Precision, Rng64};
use bsc_systolic::{ArrayConfig, Matrix, SystolicArray};

fn random_ops(rng: &mut Rng64, bits: u32, len: usize) -> Vec<i64> {
    let half = 1i64 << (bits - 1);
    (0..len).map(|_| rng.gen_range(-half..half)).collect()
}

fn bench_functional_dot() {
    let mut group = Group::new("functional_dot_L32");
    group.sample_size(50);
    let mut rng = Rng64::seed_from_u64(1);
    for kind in MacKind::ALL {
        let mac = vector_mac(kind, 32);
        for p in Precision::ALL {
            let n = mac.macs_per_cycle(p);
            let w = random_ops(&mut rng, p.bits(), n);
            let a = random_ops(&mut rng, p.bits(), n);
            group.bench(&format!("{kind}/{p}"), || mac.dot(p, &w, &a).unwrap());
        }
    }
}

fn bench_gate_sim() {
    let mut group = Group::new("gate_sim_eval_L8");
    group.sample_size(10);
    for kind in MacKind::ALL {
        let mac = bsc_mac::build_netlist(kind, 8);
        group.bench(&kind.to_string(), || mac.characterize(Precision::Int4, 4, 7).unwrap());
    }
}

fn bench_systolic_matmul() {
    let mut group = Group::new("systolic_matmul_32x32");
    group.sample_size(10);
    let mut rng = Rng64::seed_from_u64(5);
    for kind in MacKind::ALL {
        let config = ArrayConfig::paper(kind);
        let array = SystolicArray::new(config);
        let k = config.dot_length(Precision::Int8);
        let f = Matrix::from_fn(32, k, |_, _| rng.gen_range(-128i64..128));
        let w = Matrix::from_fn(32, k, |_, _| rng.gen_range(-128i64..128));
        group.bench(&kind.to_string(), || array.matmul(Precision::Int8, &f, &w).unwrap());
    }
}

fn bench_array_netlist() {
    let mut group = Group::new("gate_level_array");
    group.sample_size(5);
    group.bench("build_bsc_4x8", || bsc_systolic::netlist::build_array(MacKind::Bsc, 4, 8));
    let array = bsc_systolic::netlist::build_array(MacKind::Bsc, 2, 2);
    let k = array.dot_length(Precision::Int4);
    let f = Matrix::from_fn(6, k, |r, c| ((r + c) % 13) as i64 - 6);
    let w = Matrix::from_fn(2, k, |r, c| ((r * c) % 11) as i64 - 5);
    group.bench("run_matmul_bsc_2x2", || array.run_matmul(Precision::Int4, &f, &w).unwrap());
}

fn bench_compiler() {
    use bsc_accel::compiler::{compile_conv, execute};
    use bsc_systolic::mapping::ConvShape;
    let config = ArrayConfig { pes: 4, vector_length: 4, kind: MacKind::Bsc };
    let array = SystolicArray::new(config);
    let shape = ConvShape::conv(8, 6, 8, 8, 3, 1, 1);
    let p = Precision::Int4;
    let input = bsc_nn::Tensor::random(8, 8, 8, p.value_range(), 4);
    let mut rng = Rng64::seed_from_u64(4);
    let r = p.value_range();
    let weights = bsc_nn::ops::ConvWeights {
        out_c: 6,
        in_c: 8,
        kh: 3,
        kw: 3,
        data: (0..6 * 8 * 9).map(|_| rng.gen_range(r.clone())).collect(),
    };
    let mut group = Group::new("tile_compiler");
    group.sample_size(10);
    group.bench("compile", || compile_conv(&config, p, &shape).unwrap());
    let program = compile_conv(&config, p, &shape).unwrap();
    group.bench("execute_conv_8c_8x8", || execute(&program, &array, &input, &weights).unwrap());
}

fn bench_asym_dot() {
    use bsc_mac::asym::{lpc_dot, AsymMode};
    let mut group = Group::new("asym_lpc_dot_L32");
    group.sample_size(50);
    let mut rng = Rng64::seed_from_u64(6);
    for mode in AsymMode::ALL {
        let n = 32 * mode.products_per_lpc_unit();
        let w = random_ops(&mut rng, mode.weight.bits(), n);
        let a = random_ops(&mut rng, mode.act.bits(), n);
        group.bench(&mode.to_string(), || lpc_dot(mode, 32, &w, &a).unwrap());
    }
}

fn main() {
    bench_functional_dot();
    bench_gate_sim();
    bench_systolic_matmul();
    bench_array_netlist();
    bench_compiler();
    bench_asym_dot();
}
