//! Micro-benchmarks of the core kernels: functional vector-MAC dot
//! products, gate-level simulation throughput, and the cycle-accurate
//! systolic matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};

use bsc_mac::{vector_mac, MacKind, Precision};
use bsc_systolic::{ArrayConfig, Matrix, SystolicArray};

fn random_ops(rng: &mut StdRng, bits: u32, len: usize) -> Vec<i64> {
    let half = 1i64 << (bits - 1);
    (0..len).map(|_| rng.gen_range(-half..half)).collect()
}

fn bench_functional_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_dot_L32");
    let mut rng = StdRng::seed_from_u64(1);
    for kind in MacKind::ALL {
        let mac = vector_mac(kind, 32);
        for p in Precision::ALL {
            let n = mac.macs_per_cycle(p);
            let w = random_ops(&mut rng, p.bits(), n);
            let a = random_ops(&mut rng, p.bits(), n);
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), p.to_string()),
                &(w, a),
                |b, (w, a)| b.iter(|| mac.dot(p, w, a).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_gate_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_sim_eval_L8");
    group.sample_size(20);
    for kind in MacKind::ALL {
        let mac = bsc_mac::build_netlist(kind, 8);
        group.bench_function(kind.to_string(), |b| {
            b.iter(|| mac.characterize(Precision::Int4, 4, 7).unwrap())
        });
    }
    group.finish();
}

fn bench_systolic_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic_matmul_32x32");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    for kind in MacKind::ALL {
        let config = ArrayConfig::paper(kind);
        let array = SystolicArray::new(config);
        let k = config.dot_length(Precision::Int8);
        let f = Matrix::from_fn(32, k, |_, _| rng.gen_range(-128..128));
        let w = Matrix::from_fn(32, k, |_, _| rng.gen_range(-128..128));
        group.bench_function(kind.to_string(), |b| {
            b.iter(|| array.matmul(Precision::Int8, &f, &w).unwrap())
        });
    }
    group.finish();
}

fn bench_array_netlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_level_array");
    group.sample_size(10);
    group.bench_function("build_bsc_4x8", |b| {
        b.iter(|| bsc_systolic::netlist::build_array(MacKind::Bsc, 4, 8))
    });
    let array = bsc_systolic::netlist::build_array(MacKind::Bsc, 2, 2);
    let k = array.dot_length(Precision::Int4);
    let f = Matrix::from_fn(6, k, |r, c| ((r + c) % 13) as i64 - 6);
    let w = Matrix::from_fn(2, k, |r, c| ((r * c) % 11) as i64 - 5);
    group.bench_function("run_matmul_bsc_2x2", |b| {
        b.iter(|| array.run_matmul(Precision::Int4, &f, &w).unwrap())
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    use bsc_accel::compiler::{compile_conv, execute};
    use bsc_systolic::mapping::ConvShape;
    let config = ArrayConfig { pes: 4, vector_length: 4, kind: MacKind::Bsc };
    let array = SystolicArray::new(config);
    let shape = ConvShape::conv(8, 6, 8, 8, 3, 1, 1);
    let p = Precision::Int4;
    let input = bsc_nn::Tensor::random(8, 8, 8, p.value_range(), 4);
    let mut rng = StdRng::seed_from_u64(4);
    let r = p.value_range();
    let weights = bsc_nn::ops::ConvWeights {
        out_c: 6,
        in_c: 8,
        kh: 3,
        kw: 3,
        data: (0..6 * 8 * 9).map(|_| rng.gen_range(r.clone())).collect(),
    };
    let mut group = c.benchmark_group("tile_compiler");
    group.sample_size(20);
    group.bench_function("compile", |b| {
        b.iter(|| compile_conv(&config, p, &shape).unwrap())
    });
    let program = compile_conv(&config, p, &shape).unwrap();
    group.bench_function("execute_conv_8c_8x8", |b| {
        b.iter(|| execute(&program, &array, &input, &weights).unwrap())
    });
    group.finish();
}

fn bench_asym_dot(c: &mut Criterion) {
    use bsc_mac::asym::{lpc_dot, AsymMode};
    let mut group = c.benchmark_group("asym_lpc_dot_L32");
    let mut rng = StdRng::seed_from_u64(6);
    for mode in AsymMode::ALL {
        let n = 32 * mode.products_per_lpc_unit();
        let w = random_ops(&mut rng, mode.weight.bits(), n);
        let a = random_ops(&mut rng, mode.act.bits(), n);
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| lpc_dot(mode, 32, &w, &a).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_functional_dot,
    bench_gate_sim,
    bench_systolic_matmul,
    bench_array_netlist,
    bench_compiler,
    bench_asym_dot
);
criterion_main!(benches);
