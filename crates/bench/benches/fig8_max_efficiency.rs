//! Bench regenerating Fig. 8 (a and b): maximum vector-level and
//! array-level energy efficiencies.

use bsc_bench::timing::Group;
use bsc_bench::{experiments, Workbench};

fn main() {
    let wb = Workbench::quick().expect("characterization");
    let mut group = Group::new("fig8");
    group.sample_size(10);
    group.bench("fig8a_max_vector_efficiency", || experiments::fig8a(&wb).expect("fig8a"));
    group.bench("fig8b_array_efficiency", || experiments::fig8b(&wb).expect("fig8b"));
}
