//! Bench regenerating Fig. 8 (a and b): maximum vector-level and
//! array-level energy efficiencies.

use criterion::{criterion_group, criterion_main, Criterion};

use bsc_bench::{experiments, Workbench};

fn bench_fig8(c: &mut Criterion) {
    let wb = Workbench::quick().expect("characterization");
    c.bench_function("fig8a/max_vector_efficiency", |b| {
        b.iter(|| experiments::fig8a(&wb).expect("fig8a"))
    });
    c.bench_function("fig8b/array_efficiency", |b| {
        b.iter(|| experiments::fig8b(&wb).expect("fig8b"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig8
}
criterion_main!(benches);
