//! Hardware-aware NAS precision search against the accelerator's own
//! energy model (the Fig. 1 flow: NAS chooses per-layer bit widths, the
//! BSC array executes the result).
//!
//! The search starts from an all-8-bit ResNet-18, uses the characterized
//! BSC array's per-mode energy efficiency as the hardware cost, and prints
//! the chosen assignment with its Table-I-style precision proportions and
//! the resulting network efficiency.
//!
//! ```sh
//! cargo run --release --example nas_search
//! ```

use std::collections::BTreeMap;

use bsc_accel::{layer_to_conv_shape, Accelerator, AcceleratorConfig};
use bsc_mac::{MacKind, Precision};
use bsc_nn::nas::{search, SearchConfig};
use bsc_nn::models;
use bsc_systolic::mapping::schedule_conv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = Accelerator::new(AcceleratorConfig::quick(MacKind::Bsc))?;
    let array = accel.config().array;

    // Hardware cost of one layer = its modelled energy on this array.
    let mut models_by_precision = BTreeMap::new();
    for p in Precision::ALL {
        models_by_precision.insert(p, accel.energy_model(p)?);
    }
    let energy_cost = |layer: &bsc_nn::Layer| -> f64 {
        let shape = layer_to_conv_shape(&layer.kind);
        let schedule = schedule_conv(&array, layer.precision, &shape)
            .expect("benchmark shapes are valid");
        models_by_precision[&layer.precision].schedule_energy_fj(&schedule)
    };

    let base = models::resnet18();
    println!("searching per-layer precisions for {} ...", base.name);
    let result = search(&base, &SearchConfig::default(), energy_cost);

    println!(
        "proxy accuracy loss {:.2} (budget {:.2}), energy cost {:.3e} fJ, {} accepted moves\n",
        result.accuracy_loss,
        SearchConfig::default().accuracy_budget,
        result.cost,
        result.accepted
    );
    println!("{:<22} {:>10} {:>8}", "layer", "weights", "chosen");
    for layer in &result.network.layers {
        println!(
            "{:<22} {:>10} {:>8}",
            layer.name,
            layer.weight_count(),
            layer.precision.to_string()
        );
    }
    println!(
        "\nweight distribution: {}",
        result.network.precision_distribution()
    );

    let report = accel.run_network(&result.network)?;
    let baseline = accel.run_network(&base)?;
    println!(
        "network efficiency: {:.2} TOPS/W (NAS-chosen) vs {:.2} TOPS/W (Table-I assignment)",
        report.avg_tops_per_w(),
        baseline.avg_tops_per_w()
    );
    Ok(())
}
