//! Exports the three vector-MAC designs as structural Verilog, dumps a VCD
//! waveform of a BSC dot product, and prints the `report_timing` /
//! `report_area`-style views — the artifacts the paper's DC/PTPX/VCS flow
//! consumes and produces.
//!
//! Files are written into `target/rtl_export/`.
//!
//! ```sh
//! cargo run --release --example export_rtl
//! ```

use std::fs;
use std::path::Path;

use bsc_mac::{build_netlist, MacKind, Precision};
use bsc_netlist::{vcd::VcdRecorder, verilog, Simulator};
use bsc_synth::{render_area_report, timing, CellLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/rtl_export");
    fs::create_dir_all(out_dir)?;
    let lib = CellLibrary::smic28_like();
    const LENGTH: usize = 4;

    for kind in MacKind::ALL {
        let mac = build_netlist(kind, LENGTH);
        let module = format!("{}_vector_l{LENGTH}", kind.to_string().to_lowercase());
        let path = out_dir.join(format!("{module}.v"));
        fs::write(&path, verilog::to_verilog(mac.netlist(), &module))?;
        // Self-checking testbench for external simulators (iverilog etc.).
        let vectors = bsc_mac::tb_gen::generate_vectors(&mac, 8, 0xDEAD);
        let tb_path = out_dir.join(format!("tb_{module}.v"));
        fs::write(&tb_path, bsc_mac::tb_gen::to_verilog_testbench(&mac, &module, &vectors))?;
        println!("      + {}", tb_path.display());
        let stats = mac.netlist().stats();
        println!(
            "{kind}: wrote {} ({} cells, {} flops)",
            path.display(),
            stats.total_cells(),
            stats.flops()
        );
        println!("{}", render_area_report(mac.netlist(), &lib));
        print!("{}", timing::render_timing_report(mac.netlist(), &lib)?);
        println!();
    }

    // VCD dump: a BSC vector computing two 4-bit dot products back to back.
    let mac = build_netlist(MacKind::Bsc, 2);
    let mut sim = Simulator::new(mac.netlist())?;
    let mut rec = VcdRecorder::new("bsc_vector");
    for (pin, _) in mac.mode_pins(Precision::Int4) {
        rec.watch(pin, format!("mode_{pin}"));
    }
    mac.set_mode(&mut sim, Precision::Int4);
    let n = mac.macs_per_cycle(Precision::Int4);
    for (step, seed) in [1i64, -1, 3].iter().enumerate() {
        let w: Vec<i64> = (0..n).map(|i| ((i as i64 * seed) % 8) - 4).collect();
        let a: Vec<i64> = (0..n).map(|i| ((i as i64 + seed) % 8) - 4).collect();
        mac.write_vector_lane(&mut sim, 0, Precision::Int4, &w, &a)?;
        sim.step();
        sim.eval();
        if step == 0 {
            // The watch list is fixed at first sample; watch the mode pins
            // only (bus-level watches could be added the same way).
        }
        rec.sample(&sim, 0);
        println!(
            "cycle {step}: dot = {}",
            mac.read_dot_lane(&sim, 0)
        );
    }
    let vcd_path = out_dir.join("bsc_vector.vcd");
    fs::write(&vcd_path, rec.render(2000))?;
    println!("wrote {}", vcd_path.display());
    Ok(())
}
