//! Tour of the reproduction's extensions *beyond* the paper's scope:
//!
//! 1. **Asymmetric precision modes** (2b×4b, 4b×8b) — the BitFusion
//!    feature the paper removed from its baselines, with exact functional
//!    semantics and a brick-count energy estimate fitted to the symmetric
//!    gate-level characterizations.
//! 2. **SRAM memory hierarchy** — what the paper's datapath-only TOPS/W
//!    leaves out: weight/feature buffer reads and partial-sum
//!    read-modify-write traffic per layer.
//! 3. **Dataflow ablation** — weight-stationary versus no-reuse weight
//!    traffic on the same workload.
//!
//! ```sh
//! cargo run --release --example extensions_tour
//! ```

use bsc_accel::{Accelerator, AcceleratorConfig};
use bsc_mac::asym::{estimate_energy_per_mac_fj, lpc_dot, AsymMode};
use bsc_mac::{MacKind, Precision};
use bsc_systolic::energy::SramModel;
use bsc_systolic::{Matrix, SystolicArray, WeightReuse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. asymmetric LPC modes -------------------------------------------
    println!("== asymmetric precision (LPC extension) ==");
    let weights = vec![1, -2, 1, 0, -1, 1, -2, 1]; // 2-bit codes
    let acts = vec![7, -8, 3, 2, -5, 6, 1, -4]; // 4-bit codes
    let dot = lpc_dot(AsymMode::W2A4, 1, &weights, &acts)?;
    println!("W2A4 dot over 8 products: {dot}");

    let accel = Accelerator::new(AcceleratorConfig::quick(MacKind::Lpc))?;
    let charac = accel.characterization();
    let period = accel.config().period_ps;
    let e2 = charac.at_period(Precision::Int2, period)?.energy_per_mac_fj;
    let e4 = charac.at_period(Precision::Int4, period)?.energy_per_mac_fj;
    let e8 = charac.at_period(Precision::Int8, period)?.energy_per_mac_fj;
    for mode in AsymMode::ALL {
        let est = estimate_energy_per_mac_fj(e2, e4, e8, mode)
            .expect("symmetric characterizations are finite");
        println!(
            "{mode}: {} products/unit/cycle, estimated {est:.1} fJ/MAC \
             (symmetric anchors: 2b {e2:.1}, 4b {e4:.1}, 8b {e8:.1})",
            mode.products_per_lpc_unit()
        );
    }

    // --- 2. SRAM hierarchy ---------------------------------------------------
    println!("\n== SRAM hierarchy (energy the paper's scope excludes) ==");
    let bsc = Accelerator::new(AcceleratorConfig::quick(MacKind::Bsc))?;
    let net = bsc_nn::models::lenet5();
    let rows = bsc.memory_report(&net, &SramModel::smic28_like())?;
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>8}",
        "layer", "compute fJ", "weights fJ", "features fJ", "psum fJ", "mem %"
    );
    for (name, b) in &rows {
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.1}%",
            name,
            b.compute_fj,
            b.weight_read_fj,
            b.feature_read_fj,
            b.psum_rw_fj,
            100.0 * b.memory_fraction()
        );
    }

    // --- 3. dataflow ablation -------------------------------------------------
    println!("\n== dataflow ablation: weight-stationary vs no-reuse ==");
    let config = bsc.config().array;
    let array = SystolicArray::new(config);
    let p = Precision::Int4;
    let k = config.dot_length(p);
    let f = Matrix::from_fn(64, k, |r, c| ((r + c) % 13) as i64 - 6);
    let w = Matrix::from_fn(config.pes, k, |r, c| ((r * c) % 11) as i64 - 5);
    let model = bsc.energy_model(p)?;
    for (name, flow) in [
        ("weight-stationary", WeightReuse::WeightStationary),
        ("no-reuse", WeightReuse::NoReuse),
    ] {
        let run = array.matmul_with_dataflow(p, &f, &w, flow)?;
        println!(
            "{name:<18} weight loads {:>5}, energy {:>10.1} fJ",
            run.stats.weight_loads,
            model.run_energy_fj(&run.stats)
        );
    }
    Ok(())
}
