//! End-to-end quantized LeNet-5 inference on the BSC systolic array.
//!
//! A synthetic MNIST-like image flows through the Table-I LeNet-5 (4-bit
//! convolutions, the split 4-/2-bit `fc1`, 4-bit `fc2`).  Every layer is
//! computed twice — once with the golden reference operators and once
//! through the cycle-accurate systolic matrix engine — and the results are
//! asserted identical.  The run finishes with the accelerator's per-layer
//! energy report for the whole network.
//!
//! ```sh
//! cargo run --release --example lenet_inference
//! ```

use bsc_accel::{Accelerator, AcceleratorConfig};
use bsc_mac::{MacKind, Precision};
use bsc_nn::ops::{self, ConvWeights};
use bsc_nn::{models, Tensor};
use bsc_systolic::Matrix;
use bsc_netlist::rng::Rng64;

/// Deterministic synthetic weights, drawn from the *symmetric* code range
/// `[-(2^(b-1)-1), 2^(b-1)-1]` (zero-mean, as symmetric weight
/// quantization produces; the most negative code is unused).
fn synth(rng: &mut Rng64, p: Precision, n: usize) -> Vec<i64> {
    let hi = p.value_range().end; // 2^(b-1)
    (0..n).map(|_| rng.gen_range(-hi + 1..hi)).collect()
}

/// Re-quantizes wide accumulator outputs into the next layer's operand
/// range: ReLU, a fixed right shift, then saturation.
fn requantize(t: &Tensor, shift: u32, p: Precision) -> Tensor {
    let r = p.value_range();
    let mut out = ops::relu(t);
    out.map_inplace(|v| (v >> shift).clamp(r.start, r.end - 1));
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::seed_from_u64(2022);
    let net = models::lenet5();
    println!("network: {} ({})", net.name, net.dataset);

    // Reduced array geometry so the gate-level characterization is quick.
    let accel = Accelerator::new(AcceleratorConfig::quick(MacKind::Bsc))?;
    let array_cfg = accel.config().array;
    let array = bsc_systolic::SystolicArray::new(array_cfg);

    // --- conv1: 1→20, 5×5, 4-bit --------------------------------------------
    let p4 = Precision::Int4;
    let image = Tensor::random(1, 28, 28, p4.value_range(), 7);
    let w1 = ConvWeights {
        out_c: 20,
        in_c: 1,
        kh: 5,
        kw: 5,
        data: synth(&mut rng, p4, 20 * 25),
    };
    let golden1 = ops::conv2d(&image, &w1, 1, 0)?;
    let (feat, wmat) = ops::im2col(&image, &w1, 1, 0);
    let run1 = array.matmul_tiled(
        p4,
        &Matrix::from_rows(&feat),
        &Matrix::from_rows(&wmat),
    )?;
    for (m, _) in feat.iter().enumerate() {
        for o in 0..20 {
            let (oy, ox) = (m / golden1.width(), m % golden1.width());
            assert_eq!(run1.output.get(m, o), golden1.get(o, oy, ox));
        }
    }
    println!("conv1: systolic == golden over {} outputs ({} cycles)", 20 * feat.len(), run1.stats.cycles);
    let act1 = ops::maxpool2(&requantize(&golden1, 4, p4));

    // --- conv2: 20→50, 5×5, 4-bit -------------------------------------------
    let w2 = ConvWeights {
        out_c: 50,
        in_c: 20,
        kh: 5,
        kw: 5,
        data: synth(&mut rng, p4, 50 * 20 * 25),
    };
    let golden2 = ops::conv2d(&act1, &w2, 1, 0)?;
    let (feat2, wmat2) = ops::im2col(&act1, &w2, 1, 0);
    let run2 = array.matmul_tiled(
        p4,
        &Matrix::from_rows(&feat2),
        &Matrix::from_rows(&wmat2),
    )?;
    let (oy_w, _) = (golden2.width(), 0);
    for (m, _) in feat2.iter().enumerate() {
        for o in 0..50 {
            assert_eq!(run2.output.get(m, o), golden2.get(o, m / oy_w, m % oy_w));
        }
    }
    println!("conv2: systolic == golden over {} outputs ({} cycles)", 50 * feat2.len(), run2.stats.cycles);
    let act2 = ops::maxpool2(&requantize(&golden2, 6, p4));

    // --- fc1a (4-bit) + fc1b (2-bit): the Table-I channel-group split -------
    let p2 = Precision::Int2;
    let flat = act2.len();
    let w_fc1a = synth(&mut rng, p4, 258 * flat);
    let w_fc1b = synth(&mut rng, p2, 242 * flat);
    let fc1a = ops::fully_connected(&act2, &w_fc1a, 258)?;
    // The 2-bit group also needs 2-bit activations.
    let act2_2b = requantize(&act2, 2, p2);
    let fc1b = ops::fully_connected(&act2_2b, &w_fc1b, 242)?;
    // Systolic check for the 2-bit group.
    let feat_fc: Vec<Vec<i64>> = vec![act2_2b.as_slice().to_vec()];
    let w_rows: Vec<Vec<i64>> = w_fc1b.chunks(flat).map(<[i64]>::to_vec).collect();
    let run_fc = array.matmul_tiled(
        p2,
        &Matrix::from_rows(&feat_fc),
        &Matrix::from_rows(&w_rows),
    )?;
    for o in 0..242 {
        assert_eq!(run_fc.output.get(0, o), fc1b.get(o, 0, 0));
    }
    println!("fc1b (2-bit group): systolic == golden over 242 neurons");

    // Concatenate the two groups into the 500-wide fc1 output.
    let mut fc1 = Tensor::zeros(500, 1, 1);
    for o in 0..258 {
        fc1.set(o, 0, 0, fc1a.get(o, 0, 0));
    }
    for o in 0..242 {
        fc1.set(258 + o, 0, 0, fc1b.get(o, 0, 0));
    }
    let act3 = requantize(&fc1, 5, p4);

    // --- fc2: 500→10, 4-bit ---------------------------------------------------
    let w_fc2 = synth(&mut rng, p4, 10 * 500);
    let logits = ops::fully_connected(&act3, &w_fc2, 10)?;
    let best = (0..10).max_by_key(|&c| logits.get(c, 0, 0)).unwrap_or(0);
    println!("logits: {:?}", (0..10).map(|c| logits.get(c, 0, 0)).collect::<Vec<_>>());
    println!("predicted class (synthetic weights): {best}");

    // --- whole-network energy report ------------------------------------------
    let report = accel.run_network(&net)?;
    println!("\n{report}");
    Ok(())
}
