//! Quickstart: build a BSC accelerator, run an exact matrix multiply
//! through the cycle-accurate systolic array, and read its PPA report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bsc_accel::{Accelerator, AcceleratorConfig};
use bsc_mac::{MacKind, Precision};
use bsc_systolic::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced geometry (4 PEs × vector length 4) so the gate-level
    // characterization finishes in well under a second; swap in
    // `AcceleratorConfig::paper(MacKind::Bsc)` for the 32×32 configuration.
    let accel = Accelerator::new(AcceleratorConfig::quick(MacKind::Bsc))?;

    // --- Functional path: one 4-bit matrix multiplication ------------------
    let p = Precision::Int4;
    let k = accel.config().array.dot_length(p); // dot length in this mode
    let features = Matrix::from_fn(6, k, |m, i| ((m * 3 + i) % 13) as i64 - 6);
    let weights = Matrix::from_fn(4, k, |n, i| ((n * 7 + i) % 11) as i64 - 5);

    let run = accel.matmul(p, &features, &weights)?;
    assert_eq!(run.output, features.matmul_nt(&weights), "systolic result is exact");
    println!(
        "4-bit matmul: {} cycles, {} MACs, utilization {:.0}%",
        run.stats.cycles,
        run.stats.macs,
        100.0 * run.stats.utilization
    );

    // --- PPA path: the same design's energy efficiency per mode ------------
    for mode in Precision::ALL {
        let report = accel
            .characterization()
            .at_period(mode, accel.config().period_ps)?;
        println!(
            "{mode}: {:>7.2} TOPS/W, {:>6.1} fJ/MAC, {:>8.0} um2, {} cells",
            report.tops_per_w, report.energy_per_mac_fj, report.area_um2, report.cells
        );
    }
    Ok(())
}
