//! Precision-scalability sweep (the Fig. 7 experiment) over all three
//! designs at a reduced vector length, printed as one table.
//!
//! Shows, per design × precision mode × clock period: power, energy per
//! MAC, energy efficiency and area efficiency — the raw data behind the
//! paper's scalability comparison.
//!
//! ```sh
//! cargo run --release --example precision_sweep
//! ```

use bsc_mac::ppa::{paper_period_sweep_ps, CharacterizeConfig, DesignCharacterization};
use bsc_mac::{MacKind, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CharacterizeConfig { length: 8, ..Default::default() };
    println!(
        "{:<6} {:<7} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "design", "mode", "period ps", "power mW", "fJ/MAC", "TOPS/W", "TOPS/mm2"
    );
    for kind in MacKind::ALL {
        let design = DesignCharacterization::new(kind, &config)?;
        for p in Precision::ALL {
            for &t in &paper_period_sweep_ps() {
                match design.at_period(p, t) {
                    Ok(r) => println!(
                        "{:<6} {:<7} {:>10.0} {:>10.3} {:>12.2} {:>10.2} {:>12.2}",
                        kind.to_string(),
                        p.to_string(),
                        t,
                        r.total_power_mw(),
                        r.energy_per_mac_fj,
                        r.tops_per_w,
                        r.tops_per_mm2
                    ),
                    Err(_) => println!(
                        "{:<6} {:<7} {:>10.0} {:>10} {:>12} {:>10} {:>12}",
                        kind.to_string(),
                        p.to_string(),
                        t,
                        "-",
                        "-",
                        "-",
                        "(timing infeasible)"
                    ),
                }
            }
        }
        println!();
    }
    Ok(())
}
