#!/usr/bin/env bash
# Offline CI gate for the workspace: everything must build, test and run
# without registry access (see DESIGN.md §5, "offline-build policy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test --offline"
cargo test -q --offline --workspace

echo "==> telemetry smoke: repro --metrics-out"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    --metrics-out "$out/metrics.json" --trace-out "$out/trace.json" >/dev/null
test -s "$out/metrics.json" && test -s "$out/trace.json"
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; [json.load(open(p)) for p in sys.argv[1:]]' \
        "$out/metrics.json" "$out/trace.json"
    echo "telemetry JSON valid"
fi

echo "==> trace observatory smoke: repro trace --perfetto-out"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    trace --perfetto-out "$out/perfetto.json" --svg-out "$out/util.svg" >/dev/null
test -s "$out/perfetto.json" && test -s "$out/util.svg"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/perfetto.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
pes = {e["args"]["name"] for e in events
       if e.get("name") == "thread_name" and e["args"]["name"].startswith("PE ")}
assert len(pes) >= 1, "expected at least one PE track"
assert any(e.get("ph") == "X" and e.get("name", "").startswith("layer ")
           for e in events), "expected layer slices"
assert doc["otherData"]["dropped"] == 0, "trace ring overflowed in CI run"
print(f"perfetto JSON valid ({len(pes)} PE tracks, {len(events)} events)")
PY
fi

echo "==> evaluator bench smoke: repro --quick simbench"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    --quick --bench-out "$out/BENCH_sim.json" simbench >/dev/null
test -s "$out/BENCH_sim.json"
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$out/BENCH_sim.json"
    echo "bench JSON valid"
fi

echo "==> perf regression gate: repro diff BENCH_baseline.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_baseline.json "$out/BENCH_sim.json"

echo "==> engine serving gate: repro serve examples/serve_manifest.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    serve examples/serve_manifest.json --report-out "$out/serve_report.json" \
    --slo-out "$out/slo.json" --dash-out "$out/dash.html" \
    --events-out "$out/events.jsonl" >/dev/null
test -s "$out/serve_report.json"
# The serve report is fully deterministic (virtual batch clock, submission
# -order merging), so the diff runs at zero tolerance: any drift in job
# numerics, outcome counts or queue/admission counters fails the gate.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_serve_baseline.json "$out/serve_report.json" --tol 0

echo "==> tenant SLO gate: repro diff BENCH_slo_baseline.json"
# The per-tenant SLO report (integer latency quantiles, whole-fJ energy
# attribution, windowed series) is byte-deterministic at any worker
# count, so it is also gated at zero tolerance.
test -s "$out/slo.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_slo_baseline.json "$out/slo.json" --tol 0
# Dashboard sanity: non-empty, self-contained, one <svg> per tenant.
test -s "$out/dash.html"
test -s "$out/events.jsonl"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/slo.json" "$out/dash.html" "$out/events.jsonl" <<'PY'
import json, sys
slo = json.load(open(sys.argv[1]))
tenants = [t["name"] for t in slo["tenants"]]
assert tenants == sorted(tenants), "tenants must be sorted"
total = sum(t["energy_fj"] for t in slo["tenants"])
assert total == slo["engine"]["total_energy_fj"], "energy attribution must sum exactly"
html = open(sys.argv[2]).read()
assert html.count("<svg") == len(tenants), (
    f"expected one <svg> per tenant, got {html.count('<svg')} for {len(tenants)}")
for needle in ("<script", "http://", "https://"):
    assert needle not in html, f"dashboard must be self-contained (found {needle})"
# Every event-log line must be a strict JSON object.
events = [json.loads(line) for line in open(sys.argv[3])]
assert events and events[0]["event"] == "batch"
assert all("tenant" in e for e in events[1:]), "job events must carry tenants"
print(f"slo gate valid ({len(tenants)} tenants, {len(events)} event lines)")
PY
fi

echo "==> memory-hierarchy gate: repro mem"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    --quick mem --bench-out "$out/BENCH_mem.json" >/dev/null
test -s "$out/BENCH_mem.json"
# The sweep is analytic and cycle-domain, so the baseline diff runs at
# zero tolerance; the roofline must still have points on both sides.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_mem_baseline.json "$out/BENCH_mem.json" --tol 0
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/BENCH_mem.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
sides = {p["roofline"] for p in doc["points"]}
assert "bandwidth-bound" in sides, "sweep lost its bandwidth-bound points"
assert "compute-bound" in sides, "sweep lost its compute-bound points"
print(f"mem sweep valid ({doc['bandwidth_bound_points']} bandwidth-bound, "
      f"{doc['compute_bound_points']} compute-bound of {len(doc['points'])} points)")
PY
fi

echo "==> design-space exploration gate: repro dse examples/dse_manifest.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    dse examples/dse_manifest.json --bench-out "$out/BENCH_dse.json" \
    --svg-out "$out/dse_pareto.svg" >/dev/null
test -s "$out/BENCH_dse.json" && test -s "$out/dse_pareto.svg"
# Every field is a pure function of the manifest (no wall clock in the
# document), so the baseline diff runs at zero tolerance and the report
# must be byte-identical at any worker count.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_dse_baseline.json "$out/BENCH_dse.json" --tol 0
for w in 1 2 8; do
    cargo run --release --offline -q -p bsc-bench --bin repro -- \
        dse examples/dse_manifest.json --workers "$w" \
        --bench-out "$out/BENCH_dse_w$w.json" >/dev/null
    cmp "$out/BENCH_dse.json" "$out/BENCH_dse_w$w.json"
done
echo "dse report byte-identical at 1, 2 and 8 workers"
# Strict flag parsing: a flag that belongs to another subcommand is a
# usage error here, not silently ignored.
set +e
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    dse examples/dse_manifest.json --report-out "$out/nope.json" >/dev/null 2>&1
[ $? -eq 2 ] || { echo "dse: out-of-place flag must exit 2"; exit 1; }
set -e
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/BENCH_dse.json" "$out/dse_pareto.svg" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
sides = {p["roofline"] for p in doc["points"]}
assert "bandwidth-bound" in sides, "sweep lost its bandwidth-bound points"
assert "compute-bound" in sides, "sweep lost its compute-bound points"
front = [p for p in doc["points"] if p["pareto"]]
assert 1 < len(front) < len(doc["points"]), "Pareto front must be non-trivial"
assert len(front) == doc["pareto_points"] == doc["metrics"]["dse.points.pareto"]
assert len(doc["points"]) == doc["points_evaluated"] == doc["metrics"]["dse.points.evaluated"]
assert doc["counters"]["evaluate"]["points_evaluated"] == len(doc["points"])
svg = open(sys.argv[2]).read()
assert svg.count("<circle") == len(doc["points"]), "one circle per sweep point"
for needle in ("<script", "https://"):
    assert needle not in svg, f"scatter must be self-contained (found {needle})"
print(f"dse gate valid ({len(doc['points'])} points, {len(front)} on the front, "
      f"{doc['bandwidth_bound_points']} bandwidth-bound)")
PY
fi

echo "==> online serving gate: repro online examples/online_manifest.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    online examples/online_manifest.json --report-out "$out/online_report.json" \
    --slo-out "$out/online_slo.json" --dash-out "$out/online_dash.html" \
    --events-out "$out/online_events.jsonl" \
    --perfetto-out "$out/online_perfetto.json" >/dev/null
test -s "$out/online_report.json"
# The online report is a pure function of the manifest (discrete-event
# clock, seeded integer arrival sampling, order-independent SLO fold),
# so the baseline diff runs at zero tolerance.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_online_baseline.json "$out/online_report.json" --tol 0
# Worker-count independence: re-running the same manifest with 2 and 8
# workers must reproduce the report byte for byte.
for w in 2 8; do
    cargo run --release --offline -q -p bsc-bench --bin repro -- \
        online examples/online_manifest.json --workers "$w" \
        --report-out "$out/online_report_w$w.json" >/dev/null
    cmp "$out/online_report.json" "$out/online_report_w$w.json"
done
echo "online report byte-identical at 1, 2 and 8 workers"
# Strict flag parsing: unknown flags and missing values are usage
# errors (exit 2), not silently ignored.
set +e
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    online examples/online_manifest.json --frobnicate >/dev/null 2>&1
[ $? -eq 2 ] || { echo "unknown flag must exit 2"; exit 1; }
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    serve examples/serve_manifest.json --slo-out >/dev/null 2>&1
[ $? -eq 2 ] || { echo "missing flag value must exit 2"; exit 1; }
set -e
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/online_report.json" "$out/online_slo.json" \
        "$out/online_events.jsonl" "$out/online_perfetto.json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
agg = report["aggregate"]
assert agg["submitted"] >= 100_000, "online gate must simulate >= 1e5 jobs"
assert agg["submitted"] == agg["completed"] + agg["rejected"] + agg["shed"]
assert len(report["shards"]) >= 3, "online gate needs >= 3 heterogeneous shards"
assert len({s["kind"] for s in report["shards"]}) >= 3, "shards must be heterogeneous"
slo = json.load(open(sys.argv[2]))
verdicts = {t["name"]: t.get("attainment", {}).get("attained") for t in slo["tenants"]}
assert True in verdicts.values(), "expected a tenant meeting its SLO"
assert False in verdicts.values(), "expected a tenant missing its SLO"
assert None in verdicts.values(), "expected a tenant with no target"
events = [json.loads(line) for line in open(sys.argv[3])]
assert events[0]["event"] == "online"
assert events[0]["events_truncated"] + len(events) - 1 == agg["submitted"]
assert all(e["event"] == "job" for e in events[1:])
trace = json.load(open(sys.argv[4]))
groups = [e["args"]["name"] for e in trace["traceEvents"]
          if e.get("ph") == "M" and e.get("name") == "process_name"]
assert len(groups) == len(report["shards"]), "one Perfetto track group per shard"
# Depth observatory: a sampled series and a balanced admission funnel
# per shard, plus one counter track per shard in the Perfetto timeline.
depth = report["depth"]
assert len(depth["shards"]) == len(report["shards"])
assert all(s["samples"] > 0 for s in depth["shards"])
for f in report["funnel"]:
    stages = (f["queue_full"] + f["overloaded"] + f["deadline_infeasible"]
              + f["shed_deadline"] + f["dispatched"])
    assert f["offered"] == stages, f"funnel of {f['shard']} does not balance"
assert sum(f["offered"] for f in report["funnel"]) == agg["submitted"]
counter_pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "C"}
assert len(counter_pids) == len(report["shards"]), "one depth counter track per shard"
assert report["counters"]["engine.decision_log.truncated"] == events[0]["events_truncated"]
print(f"online gate valid ({agg['submitted']} jobs, {len(report['shards'])} shards, "
      f"{len(groups)} track groups, verdicts {sorted(verdicts)})")
PY
fi

echo "==> profiler gate: repro profile examples/profile_manifest.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    profile examples/profile_manifest.json --profile-out "$out/profile.json" \
    --folded-out "$out/profile.folded" > "$out/profile.txt"
test -s "$out/profile.json" && test -s "$out/profile.folded" && test -s "$out/profile.txt"
# The `counters` section of the profile is a pure function of the
# manifest; `wall` / `throughput` carry *_ns / *_per_sec names the
# differ reports but never gates.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_profile_baseline.json "$out/profile.json" --tol 0
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/profile.json" "$out/profile.folded" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
meta = doc["meta"]
assert meta["submitted"] >= 2_000_000, "profile gate must simulate >= 2e6 arrivals"
assert meta["shards"] >= 3, "profile gate needs a multi-shard cluster"
phases = doc["counters"]
for name in ("arrival-sampling", "dispatch", "admission",
             "schedule-eval", "slo-fold", "export"):
    assert name in phases, f"missing phase {name}"
assert phases["dispatch"]["events_popped"] == meta["submitted"] + meta["completed"]
assert phases["admission"]["offered"] == meta["submitted"]
assert phases["slo-fold"]["observations"] == meta["submitted"]
assert phases["export"]["bytes_written"] > 0
folded = [l for l in open(sys.argv[2]).read().splitlines() if l]
assert all(l.startswith("repro_online;") for l in folded), "folded stacks share one root"
# Throughput is an informational datapoint, recorded but never gated.
rate = doc["throughput"]["arrivals_per_sec"]
print(f"profile gate valid ({meta['submitted']} arrivals; "
      f"{rate:.0f} arrivals/sec, informational)")
PY
    # Counter-side worker independence: the gated section is
    # byte-identical at 1, 2 and 8 workers (only wall clock may differ).
    for w in 1 2 8; do
        cargo run --release --offline -q -p bsc-bench --bin repro -- \
            profile examples/profile_manifest.json --workers "$w" \
            --profile-out "$out/profile_w$w.json" >/dev/null
        python3 -c 'import json, sys
open(sys.argv[2], "w").write(
    json.dumps(json.load(open(sys.argv[1]))["counters"], sort_keys=True))' \
            "$out/profile_w$w.json" "$out/profile_counters_w$w.json"
    done
    cmp "$out/profile_counters_w1.json" "$out/profile_counters_w2.json"
    cmp "$out/profile_counters_w1.json" "$out/profile_counters_w8.json"
    echo "profile counters byte-identical at 1, 2 and 8 workers"
fi

echo "==> 1e7-arrival gate: repro profile examples/profile_10m_manifest.json"
# The batched hot path (LocalMetrics deltas, completion-burst pops,
# arrival refills) exists to make this scale routine: ~1.03e7 arrivals
# through the full admission/dispatch/SLO pipeline.  Counters stay a
# pure function of the manifest, so the baseline diff runs at --tol 0.
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    profile examples/profile_10m_manifest.json \
    --profile-out "$out/profile_10m.json" > "$out/profile_10m.txt"
test -s "$out/profile_10m.json"
cargo run --release --offline -q -p bsc-bench --bin repro -- \
    diff BENCH_profile_10m_baseline.json "$out/profile_10m.json" --tol 0
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/profile_10m.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
meta = doc["meta"]
assert meta["submitted"] >= 10_000_000, "1e7 gate must simulate >= 1e7 arrivals"
assert meta["submitted"] == meta["completed"] + meta["rejected"] + meta["shed"]
phases = doc["counters"]
assert phases["dispatch"]["events_popped"] == meta["submitted"] + meta["completed"]
assert phases["admission"]["offered"] == meta["submitted"]
assert phases["slo-fold"]["observations"] == meta["submitted"]
# metric_increments is derived from the LocalMetrics flush; it must
# still equal the legacy closed form of the per-event path.
assert phases["admission"]["metric_increments"] == (
    meta["submitted"] + 2 * (meta["rejected"] + meta["shed"]) + 3 * meta["completed"]
), "flush-derived metric_increments drifted from the per-event formula"
# Throughput datapoint: wall clock is never part of the --tol 0 gates,
# but the batched hot path must beat the pre-batching figure (PR-8
# measured 696474 arrivals/sec on this pipeline; see docs/profiling.md).
rate = doc["throughput"]["arrivals_per_sec"]
floor = 696474.47
assert rate > floor, f"1e7 throughput regressed: {rate:.0f}/s <= pre-batching {floor:.0f}/s"
print(f"1e7 gate valid ({meta['submitted']} arrivals; "
      f"{rate:.0f} arrivals/sec vs pre-batching {floor:.0f}/s = {rate/floor:.2f}x)")
PY
fi
# The 1e7 report itself is byte-identical at 1, 2 and 8 workers — the
# batched metrics flush and completion coalescing do not perturb a
# single exported field at any parallelism.
for w in 1 2 8; do
    cargo run --release --offline -q -p bsc-bench --bin repro -- \
        online examples/profile_10m_manifest.json --workers "$w" \
        --report-out "$out/online_10m_w$w.json" >/dev/null
done
cmp "$out/online_10m_w1.json" "$out/online_10m_w2.json"
cmp "$out/online_10m_w1.json" "$out/online_10m_w8.json"
echo "1e7 online report byte-identical at 1, 2 and 8 workers"

# Lints are best-effort: a toolchain without clippy must not fail the gate.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable, skipping lints"
fi

echo "CI OK"
